"""Declarative run configuration: one experiment cell, one validator.

A :class:`RunConfig` is the frozen, JSON/TOML-loadable description of a
single harness run ("cell"): workload mix, arrival process, fleet size,
placement, governor mode, SLO, seed.  Every harness entry point —
``cli serve``, ``cli cluster``, ``cli frontier``, and the factorial
``cli experiment`` runner — constructs one of these and routes it
through :func:`RunConfig.validate`, so conflicting knob combinations
fail with the *same* message and exit code no matter which command
surfaced them.

The config is content-addressed: :meth:`RunConfig.config_hash` digests
the canonical JSON of every result-affecting field, which is what the
experiment runner's ``--resume`` compares against persisted per-cell
artifacts (a cell re-runs iff its config changed).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from ..cluster import ARRIVAL_KINDS, PLACEMENTS
from ..control import GOVERNOR_MODES
from ..hw.soc import VARIANTS
from ..workloads import parse_mix
from .configs import ALGORITHMS, DEFAULT, FAST, scene_of

__all__ = ["MODES", "SCALES", "SCHEDULERS", "RunConfig", "RunConfigError",
           "from_cli_args", "parse_rates"]

MODES = ("serve", "cluster", "realserve")
SCALES = ("default", "fast")
SCHEDULERS = ("round_robin", "deadline")

# The option families the commands share only partially; used both to
# validate cells and to phrase the cross-command rejection messages.
_SERVE_ONLY = ("scenes", "algorithm", "variant", "sessions", "scheduler",
               "ray_budget")
_SERVE_ONLY_FLAGS = ("--scene/--algorithm/--variant/--sessions/"
                     "--scheduler/--ray-budget")
_REALSERVE_ONLY = ("host", "port", "time_scale")
_REALSERVE_ONLY_FLAGS = "--host/--port/--time-scale"


class RunConfigError(ValueError):
    """A run configuration that must be rejected, with a user-facing
    message in ``args[0]`` (the CLI prints it verbatim and exits 2)."""


@dataclass(frozen=True)
class RunConfig:
    """One cell of an experiment: everything a run needs, and nothing
    resolved from ambient state.

    Fields default to "unset" (``None``) wherever the executing harness
    owns the default, so a table stays minimal and the experiment
    defaults live in exactly one place (the ``run_serve``/``run_cluster``
    signatures).  ``label`` is cosmetic (excluded from the config hash);
    ``repetition`` distinguishes factorial repetitions (each offsets the
    seed by its index).
    """

    mode: str = "cluster"
    scale: str | None = None  # "default" | "fast" | None (runner decides)
    label: str | None = None
    repetition: int = 0

    # Shared knobs.
    workloads: str | None = None
    frames: int | None = None
    seed: int = 0
    governor: str = "off"
    slo_fps: float | None = None
    use_cache: bool = True
    # Kernel backend (see repro.backend): None lets the engine default
    # (numpy) apply; engine_workers sizes the parallel backend's pool.
    backend: str | None = None
    engine_workers: int | None = None

    # Serve-only knobs.
    sessions: int | None = None
    scheduler: str | None = None
    variant: str | None = None
    scenes: tuple = ()
    algorithm: str | None = None
    ray_budget: int | None = None

    # Cluster-only knobs.
    arrivals: str | None = None
    rate_hz: float | None = None
    duration_s: float | None = None
    workers: int | None = None
    placement: str | None = None
    queue_limit: int | None = None
    arrival_trace: str | None = None
    autoscale: bool = False
    min_workers: int | None = None
    max_workers: int | None = None
    scale_up_latency_s: float | None = None
    # Sharded field tier (repro.distribution): catalog switches it on,
    # zipf shapes the popularity skew, replication sizes the owner sets.
    catalog: int | None = None
    zipf: float | None = None
    replication: int | None = None

    # Realserve-only knobs (the live frame server + loadgen; see
    # repro.server): where the server listens, and how much the loadgen
    # compresses virtual arrival seconds into wall seconds.
    host: str | None = None
    port: int | None = None
    time_scale: float | None = None

    # -- construction / serialisation -----------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Build (and validate shape of) a config from a plain dict."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise RunConfigError(
                f"unknown RunConfig field(s) {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}")
        coerced = dict(data)
        if "scenes" in coerced and coerced["scenes"] is not None:
            coerced["scenes"] = tuple(coerced["scenes"])
        return cls(**coerced)

    def to_dict(self) -> dict:
        """Plain-JSON dict of every field (tuples become lists)."""
        out = dataclasses.asdict(self)
        out["scenes"] = list(self.scenes)
        return out

    def with_updates(self, **updates) -> "RunConfig":
        """A copy with ``updates`` applied (frozen-dataclass replace)."""
        return dataclasses.replace(self, **updates)

    def config_hash(self) -> str:
        """SHA-256 of the canonical JSON of result-affecting fields.

        ``label`` is display-only and excluded, so renaming a cell never
        forces a re-run under ``--resume``.
        """
        hashed = self.to_dict()
        hashed.pop("label")
        canonical = json.dumps(hashed, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def experiment_config(self, default_scale: str = "default"):
        """The :class:`ExperimentConfig` scale this cell runs at."""
        scale = self.scale if self.scale is not None else default_scale
        return FAST if scale == "fast" else DEFAULT

    # -- validation ------------------------------------------------------------

    def validate(self) -> "RunConfig":
        """Raise :class:`RunConfigError` on any invalid/conflicting knob
        combination; returns ``self`` so calls chain."""
        if self.mode not in MODES:
            raise RunConfigError(
                f"unknown mode {self.mode!r}; one of {MODES}")
        if self.scale is not None and self.scale not in SCALES:
            raise RunConfigError(
                f"unknown scale {self.scale!r}; one of {SCALES}")
        if self.repetition < 0:
            raise RunConfigError("repetition must be >= 0")
        self._validate_shared()
        if self.mode == "serve":
            self._validate_serve()
        elif self.mode == "realserve":
            self._validate_realserve()
        else:
            self._validate_cluster()
        return self

    def _validate_shared(self) -> None:
        if self.frames is not None and self.frames < 1:
            raise RunConfigError("--frames must be >= 1")
        if self.slo_fps is not None and self.slo_fps <= 0:
            raise RunConfigError("--slo must be > 0")
        if self.governor not in GOVERNOR_MODES:
            raise RunConfigError(f"unknown governor {self.governor!r}; "
                                 f"one of {GOVERNOR_MODES}")
        if self.workloads is not None:
            try:
                parse_mix(self.workloads)
            except (KeyError, ValueError) as exc:
                raise RunConfigError(exc.args[0]) from None
        if self.backend is not None:
            from ..backend import backend_names
            if self.backend not in backend_names():
                raise RunConfigError(
                    f"unknown backend {self.backend!r}; "
                    f"one of {backend_names()}")
        if self.engine_workers is not None:
            if self.engine_workers < 1:
                raise RunConfigError("--engine-workers must be >= 1")
            if self.backend != "parallel":
                raise RunConfigError(
                    "--engine-workers requires --backend parallel "
                    "(the other backends run in-process)")

    def _reject_realserve_only(self) -> None:
        used = [name for name in _REALSERVE_ONLY
                if getattr(self, name) is not None]
        if used:
            raise RunConfigError(
                f"{_REALSERVE_ONLY_FLAGS} are realserve-only options "
                "(cli serve-live / cli loadgen)")

    def _validate_serve(self) -> None:
        self._reject_realserve_only()
        cluster_only = [
            flag for flag, value in (
                ("--arrivals", self.arrivals),
                ("--rate", self.rate_hz),
                ("--duration", self.duration_s),
                ("--workers", self.workers),
                ("--placement", self.placement),
                ("--queue-limit", self.queue_limit),
                ("--arrival-trace", self.arrival_trace),
                ("--autoscale", self.autoscale or None),
                ("--min-workers", self.min_workers),
                ("--max-workers", self.max_workers),
                ("--scale-up-latency", self.scale_up_latency_s),
                ("--catalog", self.catalog),
                ("--zipf", self.zipf),
                ("--replication", self.replication),
            ) if value is not None]
        if cluster_only:
            raise RunConfigError(
                f"{'/'.join(cluster_only)} "
                f"{'is a cluster-only option' if len(cluster_only) == 1 else 'are cluster-only options'}")
        if self.ray_budget is not None and self.ray_budget < 1:
            raise RunConfigError("--ray-budget must be >= 1")
        if self.scheduler is not None and self.scheduler not in SCHEDULERS:
            raise RunConfigError(f"unknown scheduler {self.scheduler!r}; "
                                 f"one of {SCHEDULERS}")
        if self.workloads is not None:
            if (self.scenes or self.algorithm is not None
                    or self.variant is not None or self.sessions is not None):
                raise RunConfigError(
                    "--workload cannot be combined with --scene/"
                    "--algorithm/--variant/--sessions (the specs and mix "
                    "counts fix them)")
            return
        if self.governor != "off":
            raise RunConfigError(
                "--governor needs --workload mixes (the legacy "
                "scene-cycling sessions carry no SLO fields)")
        if self.sessions is not None and self.sessions < 1:
            raise RunConfigError("--sessions must be >= 1")
        if self.variant is not None and self.variant not in VARIANTS:
            raise RunConfigError(f"unknown variant {self.variant!r}; "
                                 f"one of {VARIANTS}")
        algorithm = self.algorithm or "directvoxgo"
        if algorithm not in ALGORITHMS:
            raise RunConfigError(f"unknown algorithm {algorithm!r}; "
                                 f"one of {ALGORITHMS}")
        for name in self.scenes:
            try:
                scene_of(name)
            except KeyError as exc:
                raise RunConfigError(exc.args[0]) from None

    def _validate_realserve(self) -> None:
        serve_only = [name for name in _SERVE_ONLY
                      if getattr(self, name) not in (None, ())]
        if serve_only:
            raise RunConfigError(
                f"{_SERVE_ONLY_FLAGS} are serve-only options (use "
                "--workload NAME[:N] to shape the arrival mix)")
        fleet_only = [
            flag for flag, value in (
                ("--workers", self.workers),
                ("--placement", self.placement),
                ("--queue-limit", self.queue_limit),
                ("--autoscale", self.autoscale or None),
                ("--min-workers", self.min_workers),
                ("--max-workers", self.max_workers),
                ("--scale-up-latency", self.scale_up_latency_s),
                ("--catalog", self.catalog),
                ("--zipf", self.zipf),
                ("--replication", self.replication),
            ) if value is not None]
        if fleet_only:
            raise RunConfigError(
                f"{'/'.join(fleet_only)} "
                f"{'does' if len(fleet_only) == 1 else 'do'} not apply "
                "to the live server (one shared engine; reconcile "
                "simulates workers=1)")
        if (self.rate_hz is not None and self.rate_hz <= 0
                or self.duration_s is not None and self.duration_s <= 0):
            raise RunConfigError("--rate and --duration must be > 0")
        arrivals = self.arrivals or "poisson"
        if arrivals not in ARRIVAL_KINDS:
            raise RunConfigError(f"unknown arrivals {arrivals!r}; "
                                 f"one of {ARRIVAL_KINDS}")
        if (arrivals == "replay") != (self.arrival_trace is not None):
            raise RunConfigError(
                "--arrival-trace is required for (and only valid with) "
                "--arrivals replay")
        if self.port is not None and not 0 <= self.port <= 65535:
            raise RunConfigError("--port must be in 0..65535")
        if self.time_scale is not None and self.time_scale <= 0:
            raise RunConfigError("--time-scale must be > 0")

    def _validate_cluster(self) -> None:
        self._reject_realserve_only()
        serve_only = [name for name in _SERVE_ONLY
                      if getattr(self, name) not in (None, ())]
        if serve_only:
            raise RunConfigError(
                f"{_SERVE_ONLY_FLAGS} are serve-only options (use "
                "--workload NAME[:N] to shape the arrival mix)")
        if (self.rate_hz is not None and self.rate_hz <= 0
                or self.duration_s is not None and self.duration_s <= 0):
            raise RunConfigError("--rate and --duration must be > 0")
        if (self.workers is not None and self.workers < 1
                or self.queue_limit is not None and self.queue_limit < 1):
            raise RunConfigError("--workers and --queue-limit must be >= 1")
        arrivals = self.arrivals or "poisson"
        if arrivals not in ARRIVAL_KINDS:
            raise RunConfigError(f"unknown arrivals {arrivals!r}; "
                                 f"one of {ARRIVAL_KINDS}")
        if self.placement is not None and self.placement not in PLACEMENTS:
            raise RunConfigError(
                f"unknown placement {self.placement!r}; one of "
                f"{tuple(sorted(PLACEMENTS))}")
        if (arrivals == "replay") != (self.arrival_trace is not None):
            raise RunConfigError(
                "--arrival-trace is required for (and only valid with) "
                "--arrivals replay")
        if arrivals == "replay" and (self.workloads is not None
                                     or self.rate_hz is not None
                                     or self.duration_s is not None):
            raise RunConfigError(
                "--workload/--rate/--duration do not apply to --arrivals "
                "replay (the trace fixes every arrival)")
        if not self.autoscale and (self.min_workers is not None
                                   or self.max_workers is not None
                                   or self.scale_up_latency_s is not None):
            raise RunConfigError(
                "--min-workers/--max-workers/--scale-up-latency require "
                "--autoscale")
        if self.catalog is None and (self.zipf is not None
                                     or self.replication is not None):
            raise RunConfigError(
                "--zipf/--replication require --catalog (the sharded "
                "field tier)")
        if self.catalog is not None and self.catalog < 1:
            raise RunConfigError("--catalog must be >= 1")
        if self.zipf is not None and self.zipf < 0:
            raise RunConfigError("--zipf must be >= 0")
        if self.replication is not None and self.replication < 0:
            raise RunConfigError("--replication must be >= 0")


def parse_rates(text: str) -> tuple:
    """Parse a frontier ``--rates`` list; >= 3 positive load points."""
    try:
        rates = tuple(float(part) for part in text.split(",")
                      if part.strip())
    except ValueError:
        raise RunConfigError(f"bad --rates {text!r}; expected "
                             "comma-separated numbers") from None
    if len(rates) < 3 or any(r <= 0 for r in rates):
        raise RunConfigError("--rates needs >= 3 positive load points")
    return rates


def _workloads_of(args) -> str | None:
    if not args.workloads:
        return None
    return ",".join(args.workloads)


def from_cli_args(command: str, args) -> RunConfig:
    """Build the validated :class:`RunConfig` behind one CLI invocation.

    ``command`` is ``"serve"``, ``"cluster"``, or ``"frontier"`` (a
    frontier invocation validates as the cluster cell its sweep expands
    into).  Cross-command flags — a serve-only flag passed to
    ``cluster``, ``--rates`` passed to ``cluster``, cluster scheduling
    flags passed to ``frontier`` — raise :class:`RunConfigError` with
    the shared messages, so every command rejects a bad combination
    identically.
    """
    scale = "fast" if args.fast else "default"
    if command == "serve":
        return RunConfig(
            mode="serve", scale=scale, workloads=_workloads_of(args),
            frames=args.frames, seed=args.seed, governor=args.governor or "off",
            slo_fps=args.slo, use_cache=not args.no_cache,
            backend=args.backend, engine_workers=args.engine_workers,
            sessions=args.sessions, scheduler=args.scheduler,
            variant=args.variant, scenes=tuple(args.scenes or ()),
            algorithm=args.algorithm, ray_budget=args.ray_budget,
            # Cluster-only flags ride along (all default late to None)
            # so validate() rejects explicit use with the shared message.
            arrivals=args.arrivals, rate_hz=args.rate,
            duration_s=args.duration, workers=args.workers,
            placement=args.placement, queue_limit=args.queue_limit,
            arrival_trace=args.arrival_trace, autoscale=args.autoscale,
            min_workers=args.min_workers, max_workers=args.max_workers,
            scale_up_latency_s=args.scale_up_latency,
            catalog=getattr(args, "catalog", None),
            zipf=getattr(args, "zipf", None),
            replication=getattr(args, "replication", None),
            # Realserve-only flags ride along for the same reason.
            host=getattr(args, "host", None), port=getattr(args, "port", None),
            time_scale=getattr(args, "time_scale", None),
        ).validate()
    if command in ("loadgen", "serve-live"):
        return RunConfig(
            mode="realserve", scale=scale, workloads=_workloads_of(args),
            frames=args.frames, seed=args.seed,
            governor=args.governor or "off", slo_fps=args.slo,
            use_cache=not args.no_cache, backend=args.backend,
            engine_workers=args.engine_workers,
            arrivals=getattr(args, "arrivals", None),
            rate_hz=getattr(args, "rate", None),
            duration_s=getattr(args, "duration", None),
            arrival_trace=getattr(args, "arrival_trace", None),
            host=args.host, port=args.port,
            time_scale=getattr(args, "time_scale", None),
        ).validate()
    if command == "cluster":
        if args.rates is not None:
            raise RunConfigError(
                "--rates is a frontier-only option (use --rate for a "
                "single arrival rate)")
    elif command == "frontier":
        if (args.arrival_trace is not None or args.autoscale
                or args.min_workers is not None
                or args.max_workers is not None
                or args.scale_up_latency is not None
                or args.rate is not None or args.arrivals is not None):
            raise RunConfigError(
                "--rate/--arrivals/--arrival-trace/--autoscale options "
                "do not apply (the sweep fixes poisson arrivals; use "
                "--rates for the load points)")
        if (getattr(args, "catalog", None) is not None
                or getattr(args, "zipf", None) is not None
                or getattr(args, "replication", None) is not None):
            raise RunConfigError(
                "--catalog/--zipf/--replication do not apply to frontier "
                "(sweep the sharded tier with cli experiment instead)")
    else:
        raise RunConfigError(f"unknown command {command!r}")
    return RunConfig(
        mode="cluster", scale=scale, workloads=_workloads_of(args),
        frames=args.frames, seed=args.seed, governor=args.governor or "off",
        slo_fps=args.slo, use_cache=not args.no_cache,
        backend=args.backend, engine_workers=args.engine_workers,
        sessions=args.sessions, scheduler=args.scheduler,
        variant=args.variant, scenes=tuple(args.scenes or ()),
        algorithm=args.algorithm, ray_budget=args.ray_budget,
        arrivals=args.arrivals, rate_hz=args.rate,
        duration_s=args.duration, workers=args.workers,
        placement=args.placement, queue_limit=args.queue_limit,
        arrival_trace=args.arrival_trace, autoscale=args.autoscale,
        min_workers=args.min_workers, max_workers=args.max_workers,
        scale_up_latency_s=args.scale_up_latency,
        catalog=getattr(args, "catalog", None),
        zipf=getattr(args, "zipf", None),
        replication=getattr(args, "replication", None),
        host=getattr(args, "host", None), port=getattr(args, "port", None),
        time_scale=getattr(args, "time_scale", None),
    ).validate()
