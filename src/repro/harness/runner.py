"""Factorial experiment runner: RunConfig cells in, one run table out.

This is the execution engine every harness surface shares.  A single
cell (:class:`~.runconfig.RunConfig`) runs through :func:`execute_cell`,
which drives the same ``simulate_cluster``/serve-engine paths as
``cli cluster``/``cli serve`` and folds the frame-economics columns
(:mod:`.pricing`) into the aggregate.  ``run_cluster`` and
``run_frontier`` are thin adapters over it, so a cell executed from a
table file is bit-for-bit the run the standalone commands produce.

An :class:`ExperimentTable` (JSON, or TOML on Python 3.11+) names a base
cell plus factorial ``axes``; :func:`run_table` expands axes x
repetitions into cells (muBench-style run tables), executes each one,
persists a per-cell raw artifact under ``<out>/cells/``, and writes the
aggregated strict-JSON run table ``BENCH_experiment.json`` plus a CSV
twin.  Every cell artifact records its config hash, so ``--resume``
re-executes only cells whose artifact is missing or whose config
changed.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass
from pathlib import Path

from ..cluster import Autoscaler, simulate_cluster
from ..workloads import apply_slo
from .cluster import DEFAULT_CLUSTER_MIX, quality_summary
from .pricing import frame_economics
from .reporting import jsonable, write_bench_json
from .runconfig import RunConfig, RunConfigError
from .serve import run_serve

try:
    import tomllib  # Python 3.11+
except ImportError:  # pragma: no cover - py3.10 CI leg
    tomllib = None

__all__ = ["CellResult", "ExperimentTable", "execute_cell", "run_table"]


@dataclass(frozen=True)
class CellResult:
    """Everything one executed cell produced.

    ``rows`` are the run's detail rows (per-worker for cluster cells,
    per-session for serve cells), ``summary`` the aggregate dict the
    standalone commands print, and ``row`` the flat run-table row —
    frontier-shaped for cluster cells — with the J/frame and $/frame
    economics columns folded in.  ``mix_label`` names the resolved
    workload mix (``"vr-lego:4,dolly-chair:2"``; empty for legacy
    scene-cycling serves).
    """

    cell: RunConfig
    rows: list
    summary: dict
    row: dict
    mix_label: str


def execute_cell(cell: RunConfig, config=None, mix=None) -> CellResult:
    """Run one cell through the real serve/cluster paths.

    ``config`` overrides the :class:`ExperimentConfig` scale (default:
    the cell's own ``scale`` field); ``mix`` lets library callers pass
    an already-resolved ``[(spec, count), ...]`` mix instead of the
    cell's ``workloads`` string.  Same cell, same seed, same result —
    bit for bit.
    """
    if config is None:
        config = cell.experiment_config()
    seed = cell.seed + cell.repetition
    if cell.mode == "serve":
        return _execute_serve(cell, config, mix, seed)
    return _execute_cluster(cell, config, mix, seed)


def _execute_cluster(cell: RunConfig, config, mix, seed: int) -> CellResult:
    raw_mix = mix if mix is not None else (cell.workloads
                                           or DEFAULT_CLUSTER_MIX)
    resolved_mix = apply_slo(raw_mix, cell.slo_fps)
    mix_label = ",".join(f"{spec.name}:{count}"
                         for spec, count in resolved_mix)
    field_store = None
    if cell.catalog is not None:
        # Expand here (not inside simulate_cluster) so the resolved mix
        # the rest of this cell sees — labels, quality accounting — is
        # the variant mix the simulator actually serves.
        from ..distribution import expand_field_serving
        resolved_mix, field_store = expand_field_serving(
            resolved_mix, config, cell.catalog, zipf=cell.zipf,
            replication=cell.replication, seed=seed)
        mix_label += (f" ×{cell.catalog} catalog "
                      f"(zipf={field_store.zipf_s}, "
                      f"R={field_store.shard_map.replication})")
    # Unset knobs resolve to the experiment defaults here, in one place.
    rate_hz = 1.0 if cell.rate_hz is None else cell.rate_hz
    duration_s = 10.0 if cell.duration_s is None else cell.duration_s
    workers = 4 if cell.workers is None else cell.workers
    queue_limit = 4 if cell.queue_limit is None else cell.queue_limit
    placement = cell.placement or "least_loaded"
    autoscaler = None
    if cell.autoscale:
        floor = 1 if cell.min_workers is None else cell.min_workers
        ceiling = 2 * workers if cell.max_workers is None else cell.max_workers
        # The autoscaler only moves the fleet between the bounds — it
        # never provisions up to a floor above the initial fleet, and a
        # ceiling below it would start the run permanently over limit —
        # so the initial size must sit inside them.
        if not floor <= workers <= ceiling:
            raise ValueError(
                f"initial workers ({workers}) must lie within "
                f"min_workers..max_workers ({floor}..{ceiling})")
        # Admission caps load per worker at queue_limit, so the scale-up
        # threshold must sit below it or tight queues would shed every
        # overload as rejects without ever growing the fleet.
        up_load = min(2.0, 0.5 * queue_limit)
        autoscaler = Autoscaler(
            min_workers=floor, max_workers=ceiling,
            up_load=up_load, down_load=min(0.25, up_load / 2),
            scale_up_latency_s=(1.0 if cell.scale_up_latency_s is None
                                else cell.scale_up_latency_s))
    report = simulate_cluster(
        resolved_mix, config, arrivals=cell.arrivals or "poisson",
        rate_hz=rate_hz, duration_s=duration_s, seed=seed,
        workers=workers, placement=placement, queue_limit=queue_limit,
        frames=cell.frames, autoscaler=autoscaler,
        use_cache=cell.use_cache, governor=cell.governor,
        slo_fps=cell.slo_fps, trace=cell.arrival_trace,
        backend=cell.backend, engine_workers=cell.engine_workers,
        field_store=field_store)
    if cell.catalog is None:
        quality = quality_summary(resolved_mix, config, report)
    else:
        # Probe PSNR renders once per unique cache key — prohibitive
        # over a catalog of variants, and orthogonal to what the
        # sharded tier measures; report the ungoverned defaults.
        quality = {"mean_psnr": 0.0, "min_workload_psnr": 0.0,
                   "quality_floor_ok": True, "psnr_per_workload": {}}
    economics = frame_economics(report.total_frames, report.total_energy_j,
                                report.total_busy_s)
    summary = report.summary()
    summary["usd_per_frame"] = economics["usd_per_frame"]
    summary["scale_events"] = report.scale_events
    if cell.governor != "off":
        summary["governor_events"] = report.governor_events
        summary.update(quality)
    offered = report.arrivals_total
    row = {
        "governor": cell.governor,
        "offered_rate_hz": rate_hz,
        "offered": offered,
        "admitted": report.admitted,
        "admitted_rate": (report.admitted / offered if offered else 0.0),
        "reject_rate": report.reject_rate,
        "p99_latency_ms": report.p99_latency_s * 1e3,
        "mean_latency_ms": report.mean_latency_s * 1e3,
        "aggregate_fps": report.aggregate_fps,
        "mean_quality_level": report.mean_quality_level,
        "tier_transitions": report.tier_transitions,
        "overflow_admissions": report.overflow_admissions,
        "mean_psnr": quality["mean_psnr"],
        "min_workload_psnr": quality["min_workload_psnr"],
        "quality_floor_ok": quality["quality_floor_ok"],
        **economics,
    }
    if cell.catalog is not None:
        # Sharded-tier columns, only when the tier ran (frontier rows
        # and un-sharded cells keep their exact legacy shape).
        row.update({
            "hierarchy_hit_rate":
                report.distribution["hierarchy_hit_rate"],
            "field_bakes": report.distribution["field_bakes"],
            "ttff_p95_ms": report.ttff_p95_s * 1e3,
        })
    return CellResult(
        cell=cell, rows=list(report.per_worker), summary=summary, row=row,
        mix_label=mix_label)


def _execute_serve(cell: RunConfig, config, mix, seed: int) -> CellResult:
    serve_mix = mix if mix is not None else cell.workloads
    scheduler = cell.scheduler or "round_robin"
    if serve_mix is not None:
        rows, summary = run_serve(
            config, scheduler=scheduler, frames=cell.frames,
            workloads=serve_mix, use_cache=cell.use_cache, seed=seed,
            governor=cell.governor, slo_fps=cell.slo_fps,
            ray_budget=cell.ray_budget, backend=cell.backend,
            engine_workers=cell.engine_workers)
        mix_label = ",".join(f"{spec.name}:{count}" for spec, count
                             in apply_slo(serve_mix, cell.slo_fps))
    else:
        rows, summary = run_serve(
            config, sessions=4 if cell.sessions is None else cell.sessions,
            scheduler=scheduler, variant=cell.variant or "cicero",
            frames=cell.frames, scene_names=tuple(cell.scenes) or ("lego",),
            algorithm=cell.algorithm or "directvoxgo",
            use_cache=cell.use_cache, seed=seed,
            ray_budget=cell.ray_budget, backend=cell.backend,
            engine_workers=cell.engine_workers)
        mix_label = ""
    row = {
        "governor": cell.governor,
        "sessions": summary["sessions"],
        "total_frames": summary["total_frames"],
        "aggregate_fps": summary["aggregate_fps"],
        "mean_latency_ms": summary["mean_latency_ms"],
        "p95_latency_ms": summary["p95_latency_ms"],
        "p99_latency_ms": summary["p99_latency_ms"],
        "ref_cache_hit_rate": summary["ref_cache_hit_rate"],
        "total_energy_j": summary["total_energy_j"],
        "joules_per_frame": summary["joules_per_frame"],
        "usd_per_frame": summary["usd_per_frame"],
    }
    return CellResult(cell=cell, rows=rows, summary=summary, row=row,
                      mix_label=mix_label)


# ---------------------------------------------------------------------------
# Factorial tables
# ---------------------------------------------------------------------------

_TABLE_KEYS = ("name", "base", "axes", "repetitions")


@dataclass(frozen=True)
class ExperimentTable:
    """A factorial experiment: base cell x axes x repetitions.

    ``axes`` is an ordered tuple of ``(field, values)`` pairs over
    :class:`RunConfig` fields; :meth:`cells` expands their cartesian
    product (last axis fastest, repetitions outermost-last) into
    validated cells.  Repetition ``r`` offsets every cell's seed by
    ``r``, so repeated cells re-sample arrivals reproducibly.
    """

    name: str
    base: RunConfig
    axes: tuple = ()
    repetitions: int = 1

    @classmethod
    def from_dict(cls, data: dict, name: str = "experiment"
                  ) -> "ExperimentTable":
        """Build a table from the parsed JSON/TOML document."""
        if not isinstance(data, dict):
            raise RunConfigError("experiment table must be a JSON/TOML "
                                 "object with 'base' and 'axes'")
        unknown = sorted(set(data) - set(_TABLE_KEYS))
        if unknown:
            raise RunConfigError(
                f"unknown table key(s) {', '.join(unknown)}; known keys: "
                f"{', '.join(_TABLE_KEYS)}")
        base = RunConfig.from_dict(data.get("base") or {})
        fields = set(RunConfig.from_dict({}).to_dict())
        axes = []
        for axis, values in (data.get("axes") or {}).items():
            if axis not in fields or axis in ("label", "repetition"):
                raise RunConfigError(
                    f"axis {axis!r} is not a sweepable RunConfig field")
            values = list(values) if isinstance(values, (list, tuple)) \
                else [values]
            if not values:
                raise RunConfigError(f"axis {axis!r} has no values")
            axes.append((axis, tuple(values)))
        repetitions = int(data.get("repetitions", 1))
        if repetitions < 1:
            raise RunConfigError("repetitions must be >= 1")
        return cls(name=str(data.get("name", name)), base=base,
                   axes=tuple(axes), repetitions=repetitions)

    @classmethod
    def from_file(cls, path) -> "ExperimentTable":
        """Load a table from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        if path.suffix == ".toml":
            if tomllib is None:
                raise RunConfigError(
                    "TOML tables need Python 3.11+ (tomllib is not "
                    "available); convert the table to JSON")
            data = tomllib.loads(path.read_text())
        else:
            try:
                data = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise RunConfigError(f"{path}: not valid JSON "
                                     f"({exc})") from None
        return cls.from_dict(data, name=path.stem)

    def cells(self) -> list:
        """The expanded, validated run list (one RunConfig per cell)."""
        names = [axis for axis, _ in self.axes]
        grids = [values for _, values in self.axes]
        expanded = []
        for assignment in itertools.product(*grids):
            for repetition in range(self.repetitions):
                label = ",".join(f"{axis}={value}" for axis, value
                                 in zip(names, assignment))
                if self.repetitions > 1:
                    label = f"{label},rep={repetition}" if label \
                        else f"rep={repetition}"
                updates = dict(zip(names, assignment))
                if "scenes" in updates:
                    updates["scenes"] = tuple(updates["scenes"])
                cell = self.base.with_updates(
                    repetition=repetition, label=label or self.name,
                    **updates)
                expanded.append(cell.validate())
        return expanded


def _cell_artifact(cells_dir: Path, table_name: str, index: int) -> Path:
    return cells_dir / f"BENCH_{table_name}_cell{index:03d}.json"


def _reusable_row(artifact: Path, config_hash: str):
    """The persisted run-table row, iff the artifact matches the hash."""
    if not artifact.exists():
        return None
    try:
        payload = json.loads(artifact.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    extra = payload.get("extra") or {}
    if extra.get("config_hash") != config_hash:
        return None
    return extra.get("row")


def _write_csv(path: Path, rows: list) -> None:
    import csv
    columns = list(dict.fromkeys(key for row in rows for key in row))
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: jsonable(value)
                             for key, value in row.items()})


def run_table(table: ExperimentTable, out_dir, resume: bool = False,
              default_scale: str = "default", log=None) -> tuple:
    """Execute (or resume) a factorial table; returns (rows, extra, path).

    One aggregated row per cell lands in ``<out>/BENCH_experiment.json``
    (strict JSON) and ``<out>/BENCH_experiment.csv``; each cell's raw
    detail rows land in ``<out>/cells/BENCH_<table>_cellNNN.json`` with
    the cell's config + config hash.  With ``resume``, cells whose
    artifact already matches their config hash are folded back into the
    table without re-executing — interrupting a run and re-running with
    ``resume`` completes only the missing cells.
    """
    out = Path(out_dir)
    cells_dir = out / "cells"
    cells = table.cells()
    rows = []
    executed = reused = 0
    started = time.perf_counter()
    for index, cell in enumerate(cells):
        config_hash = cell.config_hash()
        artifact = _cell_artifact(cells_dir, table.name, index)
        if resume:
            row = _reusable_row(artifact, config_hash)
            if row is not None:
                reused += 1
                rows.append(row)
                if log is not None:
                    log(f"[{index + 1}/{len(cells)}] {cell.label}: "
                        "resumed from artifact")
                continue
        cell_started = time.perf_counter()
        config = cell.experiment_config(default_scale)
        result = execute_cell(cell, config=config)
        cell_elapsed = time.perf_counter() - cell_started
        row = {
            "cell": cell.label or f"cell{index:03d}",
            "index": index,
            "mode": cell.mode,
            "repetition": cell.repetition,
            "mix": result.mix_label,
            "config_hash": config_hash,
            **{axis: getattr(cell, axis) for axis, _ in table.axes},
            **result.row,
        }
        write_bench_json(
            cells_dir, f"{table.name}_cell{index:03d}", result.rows,
            cell_elapsed, config=config,
            extra={"config_hash": config_hash, "config": cell.to_dict(),
                   "summary": result.summary, "row": row},
            kind="experiment-cell")
        executed += 1
        rows.append(row)
        if log is not None:
            log(f"[{index + 1}/{len(cells)}] {cell.label}: "
                f"done in {cell_elapsed:.1f}s")
    elapsed = time.perf_counter() - started
    extra = {
        "table": table.name,
        "base": table.base.to_dict(),
        "axes": {axis: list(values) for axis, values in table.axes},
        "repetitions": table.repetitions,
        "cells": len(cells),
        "executed": executed,
        "resumed": reused,
    }
    path = write_bench_json(out, "experiment", rows, elapsed, extra=extra,
                            kind="experiment")
    _write_csv(out / "BENCH_experiment.csv", rows)
    return rows, extra, path
