"""Canonical experiment configurations and cached builders.

Centralises the hardware constants of Sec. V and the workload scales used by
every benchmark, and memoises the expensive artefacts (baked fields,
ground-truth sequences) so the bench suite shares them within a process.

Two presets:

* ``DEFAULT`` — the benchmark scale (96 px frames, 96-cell grids).
* ``FAST`` — the unit/integration-test scale (48 px frames, 32-cell grids).

The paper renders 800x800 frames against 10 MB-1 GB models with a 2 MB
on-chip cache; we keep the *ratios* (frame rays >> grid cells for gather
redundancy, model >> cache for miss behaviour) at a scale where the full
suite runs in minutes.  EXPERIMENTS.md records the mapping.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache

from ..geometry.camera import Intrinsics, PinholeCamera
from ..nerf.fields.hash_grid import HashGridField
from ..nerf.fields.tensor_factor import TensorFactorField
from ..nerf.fields.voxel_grid import VoxelGridField
from ..nerf.renderer import NeRFRenderer
from ..nerf.sampling import OccupancyGrid, UniformSampler
from ..scenes.library import get_scene
from ..scenes.raytracer import RayTracer
from ..scenes.trajectory import orbit_trajectory
from ..workloads.cache import FIELD_CACHE

__all__ = ["ExperimentConfig", "DEFAULT", "FAST", "ALGORITHMS",
           "build_field", "build_renderer", "make_camera",
           "ground_truth_sequence", "scene_of"]

ALGORITHMS = ("instant_ngp", "directvoxgo", "tensorf")


@dataclass(frozen=True)
class ExperimentConfig:
    """Workload scale + hardware constants for one experiment run."""

    # Imaging.
    image_size: int = 96
    fov_deg: float = 45.0
    samples_per_ray: int = 96

    # Field scales.
    grid_resolution: int = 96  # DirectVoxGO dense grid
    hash_levels: int = 6
    hash_finest_resolution: int = 64
    hash_table_size: int = 1 << 15
    tensorf_resolution: int = 96
    tensorf_rank: int = 32
    feature_dim: int = 16
    density_sharpness: float = 200.0
    max_density: float = 800.0

    # Trajectory.
    num_frames: int = 18
    degrees_per_frame: float = 0.5
    orbit_radius: float = 3.2

    # SPARW.
    window: int = 16

    # Memory system.  The paper's 2 MB buffer serves 10 MB-1 GB models at
    # 800x800 frames (cache : per-frame gather traffic << 1); our models are
    # ~5-30 MB at 96x96, so the experiment cache scales down to keep the
    # same regime (see EXPERIMENTS.md for the mapping).
    onchip_cache_bytes: int = 64 * 1024
    cache_block_bytes: int = 64
    vft_buffer_bytes: int = 32 * 1024
    fig6_banks: int = 16
    fig6_rays: int = 16

    def camera_intrinsics(self) -> Intrinsics:
        return Intrinsics.from_fov(self.image_size, self.image_size,
                                   self.fov_deg)


DEFAULT = ExperimentConfig()
FAST = ExperimentConfig(
    image_size=48, samples_per_ray=48, grid_resolution=32,
    hash_levels=4, hash_finest_resolution=32, hash_table_size=1 << 12,
    tensorf_resolution=32, tensorf_rank=12, num_frames=8, window=4,
    # Scale the on-chip cache with the model sizes so miss behaviour keeps
    # the paper's cache << model ratio at test scale.
    onchip_cache_bytes=32 * 1024,
)


def make_camera(config: ExperimentConfig, pose=None) -> PinholeCamera:
    """Camera template for a config (identity pose unless given)."""
    camera = PinholeCamera(config.camera_intrinsics())
    return camera if pose is None else camera.with_pose(pose)


def scene_of(name: str):
    """Cached scene lookup (scenes are deterministic and read-only)."""
    return _cached_scene(name)


@lru_cache(maxsize=None)
def _cached_scene(name: str):
    return get_scene(name)


def _config_key(config: ExperimentConfig) -> tuple:
    return dataclasses.astuple(config)


def _field_config_key(config: ExperimentConfig) -> tuple:
    """The config fields a baked field (and its occupancy) depends on.

    Imaging parameters (``image_size``, ``samples_per_ray``, trajectory
    and memory-system scales) do not enter the bake, so configs that
    differ only in them — the quality-governor's degradation ladder —
    share one baked field in the cache instead of re-baking per tier.
    """
    return (config.grid_resolution, config.hash_levels,
            config.hash_finest_resolution, config.hash_table_size,
            config.tensorf_resolution, config.tensorf_rank,
            config.feature_dim, config.density_sharpness,
            config.max_density)


def _field_size(fld) -> int:
    return int(getattr(fld, "model_size_bytes", 0))


def _reference_resolution(algorithm: str, config: ExperimentConfig) -> int:
    return (config.grid_resolution if algorithm == "directvoxgo"
            else max(config.hash_finest_resolution, config.tensorf_resolution))


def _reference_grid(scene_name: str, resolution: int,
                    config: ExperimentConfig) -> VoxelGridField:
    key = ("refgrid", scene_name, resolution, config.feature_dim,
           config.density_sharpness, config.max_density)
    return FIELD_CACHE.get_or_build(
        key,
        lambda: VoxelGridField.bake(scene_of(scene_name),
                                    resolution=resolution,
                                    feature_dim=config.feature_dim,
                                    density_sharpness=config.density_sharpness,
                                    max_density=config.max_density),
        size_of=_field_size)


def _bake_field(algorithm: str, scene_name: str, config: ExperimentConfig):
    scene = scene_of(scene_name)
    reference = _reference_grid(scene_name,
                                _reference_resolution(algorithm, config),
                                config)
    if algorithm == "directvoxgo":
        return reference
    if algorithm == "instant_ngp":
        return HashGridField.bake(
            scene, num_levels=config.hash_levels,
            finest_resolution=config.hash_finest_resolution,
            table_size=config.hash_table_size,
            feature_dim=config.feature_dim, reference=reference)
    if algorithm == "tensorf":
        return TensorFactorField.bake(
            scene, resolution=config.tensorf_resolution,
            rank_per_mode=config.tensorf_rank,
            feature_dim=config.feature_dim, reference=reference)
    raise KeyError(f"unknown algorithm {algorithm!r}; one of {ALGORITHMS}")


def build_field(algorithm: str, scene_name: str,
                config: ExperimentConfig = DEFAULT):
    """Baked field for (algorithm, scene), from the bounded shared cache."""
    key = ("field", algorithm, scene_name, _field_config_key(config))
    return FIELD_CACHE.get_or_build(
        key, lambda: _bake_field(algorithm, scene_name, config),
        size_of=_field_size)


def _build_occupancy(algorithm: str, scene_name: str,
                     config: ExperimentConfig) -> OccupancyGrid:
    # All algorithms share the dense reference grid's occupancy (they model
    # the same scene); this mirrors the trained occupancy grids NeRF
    # implementations maintain and keeps sample counts comparable.
    reference = _reference_grid(scene_name,
                                _reference_resolution(algorithm, config),
                                config)
    return OccupancyGrid.from_field(reference, resolution=32)


def build_renderer(algorithm: str, scene_name: str,
                   config: ExperimentConfig = DEFAULT) -> NeRFRenderer:
    """Renderer with occupancy-culled sampling and the scene's background.

    Served from the bounded, byte-capped
    :data:`~repro.workloads.cache.FIELD_CACHE`: while an entry is live,
    concurrent sessions of the same workload share one renderer
    instance, which also lets the multi-session engine batch their ray
    work against one field.

    Cache keying (the part that makes quality-tier switching cheap —
    see :func:`_field_config_key`): the key carries *only* the config
    parameters the baked field depends on (grid/hash/tensor scales,
    feature dim, density shaping) plus ``samples_per_ray`` for the
    sampler.  Imaging parameters — ``image_size``, trajectory and
    memory-system scales — are deliberately excluded, so the quality
    governor's degradation ladder (smaller frames, shallower marching)
    resolves to a cheap new sampler around the *same* baked field and
    occupancy grid: a tier switch never re-bakes.  Entries evict LRU
    under the cache's entry/byte bounds, unlike the unbounded per-process
    memo this replaced in PR 2.
    """
    key = ("renderer", algorithm, scene_name, _field_config_key(config),
           config.samples_per_ray)

    def _build() -> NeRFRenderer:
        field = build_field(algorithm, scene_name, config)
        occupancy = _build_occupancy(algorithm, scene_name, config)
        sampler = UniformSampler(config.samples_per_ray, occupancy=occupancy)
        scene = scene_of(scene_name)
        return NeRFRenderer(field, sampler, background=scene.background)

    return FIELD_CACHE.get_or_build(key, _build)


@lru_cache(maxsize=None)
def _cached_gt_sequence(scene_name: str, config: ExperimentConfig,
                        degrees_per_frame: float, num_frames: int):
    scene = scene_of(scene_name)
    tracer = RayTracer(scene)
    trajectory = orbit_trajectory(num_frames,
                                  radius=config.orbit_radius,
                                  degrees_per_frame=degrees_per_frame)
    camera = make_camera(config)
    frames = [tracer.render(camera.with_pose(p)) for p in trajectory.poses]
    return trajectory, tuple(frames)


def ground_truth_sequence(scene_name: str, config: ExperimentConfig = DEFAULT,
                          degrees_per_frame: float | None = None,
                          num_frames: int | None = None):
    """(trajectory, ground-truth frames) for an orbit, cached per process."""
    dpf = (config.degrees_per_frame if degrees_per_frame is None
           else degrees_per_frame)
    n = config.num_frames if num_frames is None else num_frames
    trajectory, frames = _cached_gt_sequence(scene_name, config, dpf, n)
    return trajectory, list(frames)
