"""Fixed-width table rendering + machine-readable benchmark artifacts.

Every bench prints the rows/series of its paper figure through these
helpers, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction report.  :func:`write_bench_json` additionally persists a
figure's rows as ``BENCH_<figure>.json`` (rows + wall time + config scale)
so CI runs leave a perf-trajectory artifact diffable across commits.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

__all__ = ["SCHEMA_VERSION", "format_table", "print_table", "format_value",
           "jsonable", "safe_json_dumps", "bench_payload",
           "write_bench_json"]


def format_value(value, precision: int = 3) -> str:
    """Human-friendly formatting: floats rounded, rest stringified."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(rows: list, columns: list | None = None,
                 title: str | None = None, precision: int = 3) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_value(row.get(col, ""), precision) for col in columns]
                for row in rows]
    widths = [max(len(str(col)), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]

    def line(cells):
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    header = line([str(c) for c in columns])
    parts.append(header)
    parts.append("-" * len(header))
    parts.extend(line(r) for r in rendered)
    return "\n".join(parts)


def print_table(rows: list, columns: list | None = None,
                title: str | None = None, precision: int = 3) -> None:
    print()
    print(format_table(rows, columns=columns, title=title,
                       precision=precision))


def jsonable(value):
    """Coerce row values (incl. numpy scalars/arrays) to JSON-native types.

    Non-finite floats become strings (``"inf"``/``"-inf"``/``"nan"``):
    ``psnr`` legitimately returns ``inf`` for identical frames, and raw
    ``json.dumps`` would emit the spec-violating ``Infinity`` literal
    that strict parsers reject.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    if hasattr(value, "tolist"):  # numpy scalar or array
        return jsonable(value.tolist())
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value in (float("inf"), float("-inf")):
            return str(value)
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


_jsonable = jsonable  # backwards-compatible private alias


def safe_json_dumps(payload, **kwargs) -> str:
    """Strictly valid JSON: sanitise, then *refuse* any non-finite leak.

    Every bench artifact goes through this, so ``json.loads`` (and any
    non-Python consumer) round-trips what we write.  ``allow_nan=False``
    is the belt to :func:`jsonable`'s suspenders — if a new code path
    ever smuggles a raw ``inf``/``nan`` past sanitisation, writing fails
    loudly instead of producing a non-compliant artifact.
    """
    return json.dumps(jsonable(payload), allow_nan=False, **kwargs)


# Version 2 added "schema_version" (replacing v1's bare "schema") and
# "kind"; bump on any change that breaks artifact consumers
# (compare_bench.py refuses versions it does not understand).
SCHEMA_VERSION = 2


def bench_payload(name: str, rows: list, wall_time_s: float,
                  config=None, extra: dict | None = None,
                  kind: str = "figure", metrics: dict | None = None) -> dict:
    """The JSON document persisted for one figure/experiment run.

    ``kind`` says which harness surface produced the artifact
    (``figure``, ``serve``, ``cluster``, ``frontier``, ``perf``,
    ``experiment``, ``experiment-cell``) so consumers can dispatch
    without parsing the name.

    ``metrics`` attaches an observability snapshot (see
    ``docs/observability.md``).  When omitted, the snapshot of the
    run's active :class:`~repro.obs.MetricsRegistry` — if one is
    activated and non-empty — is attached automatically, so every
    artifact written inside an observed run carries its metrics.
    """
    payload = {
        "schema_version": SCHEMA_VERSION,
        "kind": str(kind),
        "figure": name,
        "wall_time_s": float(wall_time_s),
        "rows": _jsonable(rows),
    }
    if config is not None:
        payload["config_scale"] = _jsonable(config)
    if extra:
        payload["extra"] = _jsonable(extra)
    if metrics is None:
        from ..obs.runtime import current_metrics
        registry = current_metrics()
        if registry is not None and len(registry):
            metrics = registry.snapshot()
    if metrics:
        payload["metrics"] = _jsonable(metrics)
    return payload


def _existing_kind(path: Path) -> str | None:
    """The ``kind`` of the artifact at ``path``, if it parses as one."""
    try:
        existing = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(existing, dict):
        kind = existing.get("kind")
        return kind if isinstance(kind, str) else None
    return None


def write_bench_json(directory, name: str, rows: list, wall_time_s: float,
                     config=None, extra: dict | None = None,
                     kind: str = "figure",
                     metrics: dict | None = None) -> Path:
    """Write ``BENCH_<name>.json`` under ``directory``; returns the path.

    This is the single entry point every BENCH artifact goes through —
    all of them carry ``schema_version`` and ``kind``.  Overwriting an
    artifact of the *same* kind is the normal refresh path, but a
    same-named artifact of a different kind is a configuration mistake
    (two surfaces aimed at one path), so it raises ``ValueError``
    naming both kinds instead of silently clobbering history.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    if path.exists():
        existing_kind = _existing_kind(path)
        if existing_kind is not None and existing_kind != str(kind):
            raise ValueError(
                f"refusing to overwrite {path}: it holds a "
                f"{existing_kind!r} artifact, this run would write a "
                f"{str(kind)!r} one (write to a different directory or "
                "name, or remove the stale artifact)")
    payload = bench_payload(name, rows, wall_time_s, config=config,
                            extra=extra, kind=kind, metrics=metrics)
    path.write_text(safe_json_dumps(payload, indent=2, sort_keys=True)
                    + "\n")
    return path
