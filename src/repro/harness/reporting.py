"""Fixed-width table rendering for benchmark output.

Every bench prints the rows/series of its paper figure through these
helpers, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction report.
"""

from __future__ import annotations

__all__ = ["format_table", "print_table", "format_value"]


def format_value(value, precision: int = 3) -> str:
    """Human-friendly formatting: floats rounded, rest stringified."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(rows: list, columns: list | None = None,
                 title: str | None = None, precision: int = 3) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_value(row.get(col, ""), precision) for col in columns]
                for row in rows]
    widths = [max(len(str(col)), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]

    def line(cells):
        return "  ".join(cell.rjust(w) for cell, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    header = line([str(c) for c in columns])
    parts.append(header)
    parts.append("-" * len(header))
    parts.extend(line(r) for r in rendered)
    return "\n".join(parts)


def print_table(rows: list, columns: list | None = None,
                title: str | None = None, precision: int = 3) -> None:
    print()
    print(format_table(rows, columns=columns, title=title,
                       precision=precision))
