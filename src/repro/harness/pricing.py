"""Frame economics: the one place that prices served frames in $ and J.

Every harness surface (``serve``, ``cluster``, ``frontier``, and the
``experiment`` runner) folds the same two capacity-planning columns into
its aggregated rows through :func:`frame_economics`:

* ``joules_per_frame`` — SoC energy per served frame, accumulated from
  the per-frame :class:`~repro.hw.soc.FrameCost` energies (which the SoC
  models derive from :mod:`repro.memsys.energy` constants).
* ``usd_per_frame`` — electricity for that energy plus the amortised
  capital cost of the SoC-seconds the frame occupied.

The defaults are deliberately round, documented numbers: published
curves report *relative* $/frame across cells of one run table, so the
anchor only sets units (the same stance :mod:`repro.memsys.energy` takes
for its pJ/byte constants).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COST", "frame_economics"]

_JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class CostModel:
    """Dollar-cost constants for energy and amortised SoC capital."""

    # US average retail electricity price, $/kWh (order-of-magnitude
    # anchor; override per deployment).
    electricity_usd_per_kwh: float = 0.12
    # One SoC board, amortised linearly over a 3-year service life.
    soc_capital_usd: float = 450.0
    soc_lifetime_s: float = 3.0 * 365.0 * 86400.0

    @property
    def usd_per_joule(self) -> float:
        """Electricity cost of one joule."""
        return self.electricity_usd_per_kwh / _JOULES_PER_KWH

    @property
    def usd_per_busy_second(self) -> float:
        """Amortised capital cost of one SoC-second of service."""
        return self.soc_capital_usd / self.soc_lifetime_s

    def run_cost_usd(self, energy_j: float, busy_s: float) -> float:
        """Total $ cost of a run: energy plus occupied SoC time."""
        return (energy_j * self.usd_per_joule
                + busy_s * self.usd_per_busy_second)


DEFAULT_COST = CostModel()


def frame_economics(total_frames: int, energy_j: float, busy_s: float,
                    cost: CostModel = DEFAULT_COST) -> dict:
    """The J/frame and $/frame columns of one run-table row.

    ``busy_s`` is the summed SoC-busy time behind the frames (cluster:
    per-worker busy time; serve: the shared SoC's makespan).  A run that
    served zero frames reports finite zeros, never ``inf``/``nan`` — the
    strict-JSON artifact contract.
    """
    frames = int(total_frames)
    if frames <= 0:
        return {"total_energy_j": float(energy_j), "joules_per_frame": 0.0,
                "usd_per_frame": 0.0}
    return {
        "total_energy_j": float(energy_j),
        "joules_per_frame": float(energy_j) / frames,
        "usd_per_frame": cost.run_cost_usd(energy_j, busy_s) / frames,
    }
