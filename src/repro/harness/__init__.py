"""Experiment harness: configs, figure runners, run tables, reporting."""

from .configs import (
    ALGORITHMS,
    DEFAULT,
    FAST,
    ExperimentConfig,
    build_field,
    build_renderer,
    ground_truth_sequence,
    make_camera,
    scene_of,
)
from .figures import EXPERIMENTS, full_frame_profile, run_sparw
from .reporting import format_table, print_table
from .runconfig import RunConfig, RunConfigError
from .runner import ExperimentTable, execute_cell, run_table

__all__ = [
    "RunConfig",
    "RunConfigError",
    "ExperimentTable",
    "execute_cell",
    "run_table",
    "ALGORITHMS",
    "DEFAULT",
    "FAST",
    "ExperimentConfig",
    "build_field",
    "build_renderer",
    "ground_truth_sequence",
    "make_camera",
    "scene_of",
    "EXPERIMENTS",
    "full_frame_profile",
    "run_sparw",
    "format_table",
    "print_table",
]
