"""Experiment harness: configs, per-figure runners, reporting."""

from .configs import (
    ALGORITHMS,
    DEFAULT,
    FAST,
    ExperimentConfig,
    build_field,
    build_renderer,
    ground_truth_sequence,
    make_camera,
    scene_of,
)
from .experiments import EXPERIMENTS, full_frame_profile, run_sparw
from .reporting import format_table, print_table

__all__ = [
    "ALGORITHMS",
    "DEFAULT",
    "FAST",
    "ExperimentConfig",
    "build_field",
    "build_renderer",
    "ground_truth_sequence",
    "make_camera",
    "scene_of",
    "EXPERIMENTS",
    "full_frame_profile",
    "run_sparw",
    "format_table",
    "print_table",
]
