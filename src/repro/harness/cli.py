"""Command-line experiment runner.

Run any figure reproduction, or the multi-session serving workload, from a
shell::

    python -m repro.harness.cli fig07
    python -m repro.harness.cli fig19 --fast
    python -m repro.harness.cli all --fast --json-out bench-artifacts
    python -m repro.harness.cli serve --sessions 8 --fast

``--fast`` uses the reduced test-scale configuration (seconds per figure);
the default scale matches the benchmarks (minutes for the quality figures).
``--json-out DIR`` persists every run's rows as ``BENCH_<figure>.json`` so
automated runs leave machine-readable perf history.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..hw.soc import VARIANTS
from .configs import ALGORITHMS, DEFAULT, FAST, scene_of
from .experiments import EXPERIMENTS
from .reporting import print_table, write_bench_json

SERVE_COMMAND = "serve"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Reproduce individual Cicero (ISCA 2024) figures, or "
                    "serve a batched multi-session rendering workload.")
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig07), 'all', 'serve', or 'list' to print "
             "available ids")
    parser.add_argument(
        "--fast", action="store_true",
        help="use the reduced test-scale configuration")
    parser.add_argument(
        "--json-out", metavar="DIR", default=None,
        help="also write BENCH_<figure>.json artifacts into DIR")
    serve = parser.add_argument_group(
        "serve options", "only used with the 'serve' command")
    serve.add_argument("--sessions", type=int, default=4,
                       help="number of concurrent sessions (default 4)")
    serve.add_argument("--frames", type=int, default=None,
                       help="frames per session (default: config scale)")
    serve.add_argument("--scheduler", choices=("round_robin", "deadline"),
                       default="round_robin",
                       help="session scheduling policy")
    serve.add_argument("--variant", choices=VARIANTS, default="cicero",
                       help="SoC variant to price frames under")
    serve.add_argument("--scene", action="append", dest="scenes",
                       metavar="NAME",
                       help="scene(s) to cycle sessions over (repeatable; "
                            "default lego)")
    serve.add_argument("--algorithm", default="directvoxgo",
                       help="NeRF algorithm for every session")
    return parser


def run_figure(name: str, config, json_dir: str | None = None) -> None:
    started = time.time()
    result = EXPERIMENTS[name](config)
    rows = result if isinstance(result, list) else [result]
    elapsed = time.time() - started
    print_table(rows, title=f"{name} ({elapsed:.1f}s)")
    if json_dir is not None:
        write_bench_json(json_dir, name, rows, elapsed, config=config)


def run_serve(args, config) -> int:
    from .serve import run_serve as serve_experiment
    if args.sessions < 1:
        print("serve: --sessions must be >= 1", file=sys.stderr)
        return 2
    if args.frames is not None and args.frames < 1:
        print("serve: --frames must be >= 1", file=sys.stderr)
        return 2
    if args.algorithm not in ALGORITHMS:
        print(f"serve: unknown algorithm {args.algorithm!r}; one of "
              f"{ALGORITHMS}", file=sys.stderr)
        return 2
    scenes = tuple(args.scenes or ("lego",))
    for name in scenes:
        try:
            scene_of(name)
        except KeyError as exc:
            print(f"serve: {exc.args[0]}", file=sys.stderr)
            return 2
    started = time.time()
    rows, summary = serve_experiment(
        config, sessions=args.sessions, scheduler=args.scheduler,
        variant=args.variant, frames=args.frames,
        scene_names=scenes, algorithm=args.algorithm)
    elapsed = time.time() - started
    print_table(rows, title=f"serve: {args.sessions} sessions "
                            f"({elapsed:.1f}s wall)")
    print_table([summary], title="aggregate")
    if args.json_out is not None:
        write_bench_json(args.json_out, SERVE_COMMAND, rows, elapsed,
                         config=config, extra=summary)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = FAST if args.fast else DEFAULT

    if args.json_out is not None:
        from pathlib import Path
        target = Path(args.json_out)
        if target.exists() and not target.is_dir():
            print(f"--json-out: {args.json_out!r} exists and is not a "
                  "directory", file=sys.stderr)
            return 2

    if args.figure == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        print(SERVE_COMMAND)
        return 0
    if args.figure == SERVE_COMMAND:
        return run_serve(args, config)
    if args.figure == "all":
        for name in sorted(EXPERIMENTS):
            run_figure(name, config, json_dir=args.json_out)
        return 0
    if args.figure not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        print(f"unknown figure {args.figure!r}; expected one of: {known}, "
              f"all, serve, list", file=sys.stderr)
        return 2
    run_figure(args.figure, config, json_dir=args.json_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
