"""Command-line experiment runner.

Run any figure reproduction from a shell::

    python -m repro.harness.cli fig07
    python -m repro.harness.cli fig19 --fast
    python -m repro.harness.cli all --fast

``--fast`` uses the reduced test-scale configuration (seconds per figure);
the default scale matches the benchmarks (minutes for the quality figures).
"""

from __future__ import annotations

import argparse
import sys
import time

from .configs import DEFAULT, FAST
from .experiments import EXPERIMENTS
from .reporting import print_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Reproduce individual Cicero (ISCA 2024) figures.")
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig07) or 'all'; 'list' prints available ids")
    parser.add_argument(
        "--fast", action="store_true",
        help="use the reduced test-scale configuration")
    return parser


def run_figure(name: str, config) -> None:
    started = time.time()
    result = EXPERIMENTS[name](config)
    rows = result if isinstance(result, list) else [result]
    print_table(rows, title=f"{name} ({time.time() - started:.1f}s)")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = FAST if args.fast else DEFAULT

    if args.figure == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.figure == "all":
        for name in sorted(EXPERIMENTS):
            run_figure(name, config)
        return 0
    if args.figure not in EXPERIMENTS:
        print(f"unknown figure {args.figure!r}; try 'list'", file=sys.stderr)
        return 2
    run_figure(args.figure, config)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
