"""Command-line experiment runner.

Run any figure reproduction, the multi-session serving workload, or the
open-loop cluster simulator from a shell::

    python -m repro.harness.cli fig07
    python -m repro.harness.cli fig19 --fast
    python -m repro.harness.cli all --fast --json-out bench-artifacts
    python -m repro.harness.cli serve --sessions 8 --fast
    python -m repro.harness.cli workloads
    python -m repro.harness.cli serve --fast \\
        --workload vr-lego:3 --workload dolly-chair:2
    python -m repro.harness.cli cluster --fast --arrivals poisson \\
        --rate 1.5 --duration 8 --workers 4 --placement cache_affinity
    python -m repro.harness.cli cluster --fast --governor adaptive \\
        --slo 2000 --rate 40 --duration 1 --workers 1 --queue-limit 2
    python -m repro.harness.cli frontier --fast --rates 8,24,72 --frames 3
    python -m repro.harness.cli experiment --table examples/experiments/quick.json
    python -m repro.harness.cli experiment --table t.json --resume --out runs
    python -m repro.harness.cli bench --quick
    python -m repro.harness.cli bench --kernels single_session.sparw
    python -m repro.harness.cli cluster --fast --trace run.trace.json
    python -m repro.harness.cli trace analyze run.trace.json --top 20
    python -m repro.harness.cli serve-live --fast --port 7070
    python -m repro.harness.cli loadgen --fast --rate 3 --duration 2 \\
        --seed 7 --frames 4 --time-scale 0.2
    python -m repro.harness.cli reconcile \\
        --input bench-artifacts/BENCH_realserve.json

``--fast`` uses the reduced test-scale configuration (seconds per figure);
the default scale matches the benchmarks (minutes for the quality figures).
``--json-out DIR`` persists every run's rows as ``BENCH_<figure>.json`` so
automated runs leave machine-readable perf history.  ``serve --workload
NAME[:N]`` mixes named workload specs (see the ``workloads`` command) into
one heterogeneous serve with the shared cross-session reference cache.
``cluster`` runs sessions *arriving over time* against a fleet of SoC
workers with admission control, placement, and optional autoscaling;
``--seed`` makes every stochastic run reproducible.  ``experiment``
executes a factorial run table of such cells (``--table table.json``,
``--resume`` to complete an interrupted run; see docs/experiments.md).
``--trace PATH`` records any serve/cluster/frontier/experiment run as
Chrome Trace Event JSON, and ``trace analyze PATH`` summarises such a
trace from the artifact alone (see docs/observability.md).
``serve-live`` binds the real asyncio frame server on a TCP port;
``loadgen`` replays a seeded arrival schedule against it over real
sockets (self-hosting a server unless ``--connect`` targets a running
one) and writes measured wall-clock quantiles to
``BENCH_realserve.json``; ``reconcile`` diffs that artifact against a
matched cluster-simulator prediction (see docs/serving-guide.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..backend import backend_names
from ..cluster import ARRIVAL_KINDS, PLACEMENTS
from ..control import GOVERNOR_MODES
from ..hw.soc import VARIANTS
from ..workloads import list_workloads
from .configs import DEFAULT, FAST
from .figures import EXPERIMENTS
from .reporting import print_table, write_bench_json
from .runconfig import RunConfigError, from_cli_args, parse_rates

SERVE_COMMAND = "serve"
WORKLOADS_COMMAND = "workloads"
CLUSTER_COMMAND = "cluster"
FRONTIER_COMMAND = "frontier"
BENCH_COMMAND = "bench"
EXPERIMENT_COMMAND = "experiment"
TRACE_COMMAND = "trace"
SERVE_LIVE_COMMAND = "serve-live"
LOADGEN_COMMAND = "loadgen"
RECONCILE_COMMAND = "reconcile"

# Commands that run under an observability activation: metrics are
# always collected into their BENCH artifacts, and --trace additionally
# records a Chrome Trace Event JSON of the run.
OBSERVED_COMMANDS = (SERVE_COMMAND, CLUSTER_COMMAND, FRONTIER_COMMAND,
                     EXPERIMENT_COMMAND, LOADGEN_COMMAND)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Reproduce individual Cicero (ISCA 2024) figures, or "
                    "serve a batched multi-session rendering workload.")
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig07), 'all', 'serve', 'cluster', "
             "'frontier' (quality-vs-throughput sweep), 'experiment' "
             "(factorial run table from --table), 'bench' (hot-path "
             "microbenchmarks -> BENCH_perf.json), 'trace' (analyze a "
             "--trace artifact: trace analyze PATH), 'workloads' to "
             "list the named workload registry, or 'list' to print "
             "available ids")
    parser.add_argument(
        "extra", nargs="*", metavar="...",
        help="subcommand arguments (only 'trace' takes any: "
             "'analyze PATH')")
    parser.add_argument(
        "--fast", action="store_true",
        help="use the reduced test-scale configuration")
    parser.add_argument(
        "--json-out", metavar="DIR", default=None,
        help="also write BENCH_<figure>.json artifacts into DIR")
    shared = parser.add_argument_group(
        "serve/cluster options",
        "used by the 'serve', 'cluster', and 'frontier' commands")
    serve = parser.add_argument_group(
        "serve options", "only used with the 'serve' command")
    serve.add_argument("--sessions", type=int, default=None,
                       help="number of concurrent sessions (default 4; "
                            "with --workload the mix counts decide)")
    shared.add_argument("--frames", type=int, default=None,
                        help="frames per session (default: config scale)")
    serve.add_argument("--scheduler", choices=("round_robin", "deadline"),
                       default=None,
                       help="session scheduling policy (default "
                            "round_robin; defaults late so 'cluster' can "
                            "reject explicit use)")
    serve.add_argument("--variant", choices=VARIANTS, default=None,
                       help="SoC variant to price frames under "
                            "(default cicero)")
    serve.add_argument("--scene", action="append", dest="scenes",
                       metavar="NAME",
                       help="scene(s) to cycle sessions over (repeatable; "
                            "default lego)")
    serve.add_argument("--algorithm", default=None,
                       help="NeRF algorithm for every session "
                            "(default directvoxgo)")
    shared.add_argument("--workload", action="append", dest="workloads",
                        metavar="NAME[:N]",
                        help="named workload spec to serve, optionally "
                             "duplicated N times (repeatable; see the "
                             "'workloads' command; the spec fixes scene/"
                             "algorithm/variant, so --scene/--algorithm/"
                             "--variant/--sessions do not apply; with "
                             "'cluster' the counts act as arrival "
                             "popularity weights)")
    shared.add_argument("--no-cache", action="store_true",
                        help="disable the shared cross-session reference "
                             "cache (outputs are bit-identical either way)")
    shared.add_argument("--backend", choices=backend_names(), default=None,
                        help="kernel backend for the hot paths: 'numpy' "
                             "(default, exact), 'numba' (JIT, bounded "
                             "error, falls back to numpy when not "
                             "installed), or 'parallel' (multi-core "
                             "session fan-out, bit-identical to numpy); "
                             "also honoured by 'bench' and 'experiment'")
    shared.add_argument("--engine-workers", type=int, default=None,
                        metavar="N",
                        help="worker-process count for --backend parallel "
                             "(default 2); rejected with the in-process "
                             "backends")
    shared.add_argument("--trace", metavar="PATH", default=None,
                        help="record the run as Chrome Trace Event JSON "
                             "at PATH (load in chrome://tracing or "
                             "Perfetto; inspect with 'trace analyze "
                             "PATH'); also honoured by 'experiment'")
    shared.add_argument("--seed", type=int, default=0,
                        help="seed for every stochastic choice (trajectory "
                             "sampling, arrival schedule); same seed, same "
                             "run (default 0)")
    shared.add_argument("--governor", choices=GOVERNOR_MODES, default=None,
                        help="SLO quality governor: 'off' serves every "
                             "session at its native tier, 'static' pins "
                             "each workload's min_quality_tier, 'adaptive' "
                             "degrades/recovers on observed frame latency "
                             "(default off; 'frontier' sweeps all modes "
                             "unless one is forced here)")
    shared.add_argument("--slo", type=float, default=None, metavar="FPS",
                        help="override every workload's SLO frame rate "
                             "(default: each spec's slo_fps, falling back "
                             "to its fps_target)")
    serve.add_argument("--ray-budget", type=int, default=None,
                       help="cap on rays served per engine round; with "
                            "--governor the budget is split into "
                            "per-session shares by SLO pressure "
                            "(default: unbounded)")
    bench = parser.add_argument_group(
        "bench options", "only used with the 'bench' command")
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke scale: FAST config, fewer reps, "
                            "smaller synthetic inputs (seconds instead "
                            "of minutes)")
    bench.add_argument("--kernels", metavar="K1,K2,...", default=None,
                       help="run only these registered kernels (default: "
                            "the full registry; see docs/benchmarking.md)")
    bench.add_argument("--repeat", type=int, default=3, metavar="N",
                       help="repeat every kernel N times and keep the "
                            "best (fastest) measurement per kernel "
                            "(default 3)")
    frontier = parser.add_argument_group(
        "frontier options", "only used with the 'frontier' command")
    frontier.add_argument("--rates", metavar="R1,R2,...", default=None,
                          help="comma-separated offered arrival rates "
                               "(sessions/s) to sweep (default 8,24,72; "
                               "need >= 3 points for a frontier)")
    cluster = parser.add_argument_group(
        "cluster options", "only used with the 'cluster' command")
    cluster.add_argument("--arrivals", choices=ARRIVAL_KINDS,
                         default=None,
                         help="arrival process (default poisson; defaults "
                              "late so 'frontier' can reject explicit "
                              "use — its sweep fixes poisson)")
    cluster.add_argument("--rate", type=float, default=None,
                         help="arrival rate in sessions/s; peak rate for "
                              "diurnal (default 1.0; not valid with "
                              "--arrivals replay)")
    cluster.add_argument("--duration", type=float, default=None,
                         help="arrival window in virtual seconds "
                              "(default 10; not valid with --arrivals "
                              "replay)")
    cluster.add_argument("--workers", type=int, default=None,
                         help="initial SoC worker count (default 4; "
                              "defaults late so 'serve' can reject "
                              "explicit use)")
    cluster.add_argument("--placement",
                         choices=tuple(sorted(PLACEMENTS)),
                         default=None,
                         help="placement policy, also honoured by "
                              "'frontier' (default least_loaded; "
                              "cache_affinity co-locates sessions sharing "
                              "content on one worker's reference cache; "
                              "shard_affinity breaks load ties toward "
                              "workers already holding the field — pair "
                              "with --catalog)")
    cluster.add_argument("--queue-limit", type=int, default=None,
                         help="max resident sessions per worker before "
                              "admission rejects (default 4)")
    cluster.add_argument("--arrival-trace", metavar="PATH", default=None,
                         help="JSON arrival trace for --arrivals replay")
    cluster.add_argument("--autoscale", action="store_true",
                         help="scale the fleet on load between "
                              "--min-workers and --max-workers")
    cluster.add_argument("--min-workers", type=int, default=None,
                         help="autoscaler floor (default 1; requires "
                              "--autoscale)")
    cluster.add_argument("--max-workers", type=int, default=None,
                         help="autoscaler ceiling (default 2x --workers; "
                              "requires --autoscale)")
    cluster.add_argument("--scale-up-latency", type=float, default=None,
                         help="provisioning delay in virtual seconds "
                              "before a scaled-up worker takes sessions "
                              "(default 1.0; requires --autoscale)")
    cluster.add_argument("--catalog", type=int, default=None, metavar="N",
                         help="expand the workload mix into N "
                              "content-distinct scene variants served "
                              "through the sharded field tier (see "
                              "docs/sharded-serving.md)")
    cluster.add_argument("--zipf", type=float, default=None, metavar="S",
                         help="zipfian popularity skew over the catalog "
                              "(default 1.1; 0 = uniform; requires "
                              "--catalog)")
    cluster.add_argument("--replication", type=int, default=None,
                         metavar="R",
                         help="replicas per baked field in the shard "
                              "tier (default 2; 0 disables the tier — "
                              "per-worker LRU only; requires --catalog)")
    realserve = parser.add_argument_group(
        "realserve options",
        "used by the 'serve-live', 'loadgen', and 'reconcile' commands "
        "(the real wall-clock frame server; see docs/serving-guide.md)")
    realserve.add_argument("--host", default=None,
                           help="interface the frame server binds "
                                "(default 127.0.0.1)")
    realserve.add_argument("--port", type=int, default=None,
                           help="port the frame server binds (default 0 "
                                "= ephemeral; the bound port is printed)")
    realserve.add_argument("--connect", metavar="HOST:PORT", default=None,
                           help="loadgen only: target an already-running "
                                "'serve-live' server instead of starting "
                                "an in-process one")
    realserve.add_argument("--time-scale", type=float, default=None,
                           help="loadgen only: wall seconds per virtual "
                                "arrival second (default 1.0; <1 "
                                "compresses the schedule — reconcile "
                                "normalises back to virtual seconds)")
    realserve.add_argument("--input", metavar="PATH", default=None,
                           help="reconcile only: the BENCH_realserve.json "
                                "a 'loadgen' run wrote")
    trace = parser.add_argument_group(
        "trace options", "only used with the 'trace' command")
    trace.add_argument("--top", type=int, default=10, metavar="N",
                       help="rows per 'trace analyze' ranking (slowest "
                            "frames/spans; default 10)")
    experiment = parser.add_argument_group(
        "experiment options", "only used with the 'experiment' command")
    experiment.add_argument("--table", metavar="PATH", default=None,
                            help="factorial run table (.json, or .toml on "
                                 "Python 3.11+): a base RunConfig plus "
                                 "axes to sweep (see docs/experiments.md)")
    experiment.add_argument("--resume", action="store_true",
                            help="skip cells whose artifact under "
                                 "--out/cells already matches their "
                                 "config hash")
    experiment.add_argument("--out", metavar="DIR", default=None,
                            help="artifact directory for the run table "
                                 "(default bench-artifacts)")
    return parser


def run_figure(name: str, config, json_dir: str | None = None) -> None:
    started = time.perf_counter()
    result = EXPERIMENTS[name](config)
    rows = result if isinstance(result, list) else [result]
    elapsed = time.perf_counter() - started
    print_table(rows, title=f"{name} ({elapsed:.1f}s)")
    if json_dir is not None:
        write_bench_json(json_dir, name, rows, elapsed, config=config)


def run_workloads_listing() -> int:
    rows = [spec.describe() for spec in list_workloads()]
    print_table(rows, title=f"workload registry ({len(rows)} specs)")
    return 0


def run_serve(args, config) -> int:
    from .runner import execute_cell
    try:
        cell = from_cli_args(SERVE_COMMAND, args)
    except RunConfigError as exc:
        print(f"serve: {exc.args[0]}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    result = execute_cell(cell, config=config)
    rows, summary = result.rows, result.summary
    elapsed = time.perf_counter() - started
    print_table(rows, title=f"serve: {len(rows)} sessions "
                            f"({elapsed:.1f}s wall)")
    cache = summary.get("cache") or {}
    print_table([{k: v for k, v in summary.items() if k != "cache"}],
                title="aggregate")
    if cache:
        print_table([{"cache": name, **stats}
                     for name, stats in sorted(cache.items())],
                    title="shared caches (counters: this run; "
                          "entries/bytes: current totals)")
    if args.json_out is not None:
        name = "serve_mixed" if cell.workloads is not None else SERVE_COMMAND
        write_bench_json(args.json_out, name, rows, elapsed,
                         config=config, extra=summary, kind=SERVE_COMMAND)
    return 0


def run_cluster_command(args, config) -> int:
    from .runner import execute_cell
    try:
        cell = from_cli_args(CLUSTER_COMMAND, args)
    except RunConfigError as exc:
        print(f"cluster: {exc.args[0]}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    try:
        result = execute_cell(cell, config=config)
    except (ValueError, KeyError, OSError) as exc:
        # ValueError/KeyError carry a crafted message in args[0];
        # OSError's args[0] is the bare errno, so stringify the whole
        # exception ("[Errno 2] No such file ...: 'trace.json'").
        message = (exc.args[0] if isinstance(exc, (ValueError, KeyError))
                   else exc)
        print(f"cluster: {message}", file=sys.stderr)
        return 2
    rows, summary = result.rows, result.summary
    elapsed = time.perf_counter() - started
    print_table(rows, title=f"cluster: {len(rows)} workers "
                            f"({elapsed:.1f}s wall)")
    nested = ("scale_events", "governor_events", "psnr_per_workload")
    print_table([{k: v for k, v in summary.items()
                  if k not in nested}], title="aggregate")
    if summary.get("psnr_per_workload"):
        print_table([{"workload": name, "mean_psnr_db": psnr}
                     for name, psnr in
                     sorted(summary["psnr_per_workload"].items())],
                    title="served quality (probe PSNR)")
    if summary.get("scale_events"):
        print_table(summary["scale_events"], title="autoscaler timeline")
    events = summary.get("governor_events") or []
    if events:
        print_table(events[:30],
                    title=f"governor timeline (first 30 of {len(events)})")
    # Cluster runs are run-table experiments (muBench-style): every run
    # persists its machine-readable report, defaulting next to the other
    # bench artifacts when --json-out is not given.
    json_dir = "bench-artifacts" if args.json_out is None else args.json_out
    path = write_bench_json(json_dir, CLUSTER_COMMAND, rows, elapsed,
                            config=config, extra=summary,
                            kind=CLUSTER_COMMAND)
    print(f"\nwrote {path}")
    return 0


def _server_options(cell):
    """The ServerOptions one realserve RunConfig describes."""
    from ..server import ServerOptions
    return ServerOptions(
        host=cell.host or "127.0.0.1", port=cell.port or 0,
        use_cache=cell.use_cache, governor=cell.governor,
        slo_fps=cell.slo_fps, backend=cell.backend,
        engine_workers=cell.engine_workers)


def run_serve_live(args, config) -> int:
    import asyncio
    from ..server import FrameServer
    try:
        cell = from_cli_args(SERVE_LIVE_COMMAND, args)
    except RunConfigError as exc:
        print(f"serve-live: {exc.args[0]}", file=sys.stderr)
        return 2
    loadgen_only = [flag for flag, value in (
        ("--arrivals", cell.arrivals), ("--rate", cell.rate_hz),
        ("--duration", cell.duration_s), ("--time-scale", cell.time_scale),
        ("--connect", args.connect), ("--workload", cell.workloads),
        ("--frames", cell.frames),
    ) if value is not None]
    if loadgen_only:
        print(f"serve-live: {'/'.join(loadgen_only)} "
              f"{'is a' if len(loadgen_only) == 1 else 'are'} loadgen "
              "option(s) (the connecting client picks workloads)",
              file=sys.stderr)
        return 2

    async def serve() -> None:
        server = FrameServer(config=config, options=_server_options(cell))
        await server.start()
        # flush: readiness probes tail this line through a redirect.
        print(f"frame server listening on "
              f"{server.options.host}:{server.port} (Ctrl-C to stop)",
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("serve-live: stopped")
    return 0


def run_loadgen_command(args, config) -> int:
    import asyncio
    from ..server import FrameServer, LoadgenOptions, run_loadgen
    from .cluster import DEFAULT_CLUSTER_MIX
    try:
        cell = from_cli_args(LOADGEN_COMMAND, args)
    except RunConfigError as exc:
        print(f"loadgen: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.connect is not None and (cell.host is not None
                                     or cell.port is not None):
        print("loadgen: --connect targets a running server; --host/"
              "--port configure the in-process one (pick one)",
              file=sys.stderr)
        return 2
    try:
        options = LoadgenOptions(
            mix=cell.workloads or DEFAULT_CLUSTER_MIX,
            arrivals=cell.arrivals or "poisson",
            rate_hz=2.0 if cell.rate_hz is None else cell.rate_hz,
            duration_s=(4.0 if cell.duration_s is None
                        else cell.duration_s),
            seed=cell.seed, frames=cell.frames,
            time_scale=(1.0 if cell.time_scale is None
                        else cell.time_scale),
            arrival_trace=cell.arrival_trace)
    except ValueError as exc:
        print(f"loadgen: {exc.args[0]}", file=sys.stderr)
        return 2

    async def drive() -> dict:
        server = None
        if args.connect is None:
            from ..obs.runtime import current_tracer
            server = FrameServer(config=config,
                                 options=_server_options(cell),
                                 tracer=current_tracer())
            await server.start()
            host, port = server.options.host, server.port
        else:
            host, _, port_text = args.connect.rpartition(":")
            port = int(port_text)
        try:
            return await run_loadgen(host, port, options)
        finally:
            if server is not None:
                await server.stop()

    if args.connect is not None:
        try:
            host, _, port_text = args.connect.rpartition(":")
            if not host or not 0 < int(port_text) <= 65535:
                raise ValueError(args.connect)
        except ValueError:
            print(f"loadgen: bad --connect {args.connect!r}; expected "
                  "HOST:PORT", file=sys.stderr)
            return 2
    started = time.perf_counter()
    try:
        summary = asyncio.run(drive())
    except (ValueError, KeyError, OSError) as exc:
        message = (exc.args[0] if isinstance(exc, (ValueError, KeyError))
                   else exc)
        print(f"loadgen: {message}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    # The reconcile command re-simulates from the artifact alone, so the
    # summary must pin down how the live server was configured too.
    summary.update({"governor": cell.governor, "slo_fps": cell.slo_fps,
                    "use_cache": cell.use_cache, "backend": cell.backend,
                    "scale": "fast" if args.fast else "default",
                    "self_served": args.connect is None})
    sessions = summary.pop("sessions")
    rows = [{"workload": s["workload"], "scheduled_s": s["scheduled_s"],
             "status": s["status"], "frames": s["frames"],
             "ttff_ms": (s["ttff_s"] or 0.0) * 1e3,
             "first_digest": (s["digests"][0] if s["digests"] else None)}
            for s in sessions]
    print_table(rows, title=f"loadgen: {len(rows)} sessions "
                            f"({elapsed:.1f}s wall)")
    print_table([{k: summary[k] for k in (
        "sessions_ok", "frames_total", "ttff_mean_ms", "ttff_p95_ms",
        "p50_latency_ms", "p95_latency_ms", "p99_latency_ms")}],
        title="measured wall-clock quantiles")
    failed = [s for s in sessions if s["status"] != "ok"]
    if failed:
        print(f"\nloadgen: {len(failed)}/{len(sessions)} sessions "
              "failed", file=sys.stderr)
    json_dir = "bench-artifacts" if args.json_out is None else args.json_out
    path = write_bench_json(json_dir, "realserve", rows, elapsed,
                            config=config, extra=summary,
                            kind="realserve")
    print(f"\nwrote {path}")
    return 0 if not failed else 1


def run_reconcile_command(args, config) -> int:
    import json
    from pathlib import Path

    from ..server import reconcile_report
    if args.input is None:
        print("reconcile: --input is required (a BENCH_realserve.json "
              "written by 'loadgen')", file=sys.stderr)
        return 2
    try:
        artifact = json.loads(Path(args.input).read_text())
    except OSError as exc:
        print(f"reconcile: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"reconcile: {args.input} is not JSON: {exc}",
              file=sys.stderr)
        return 2
    if artifact.get("kind") != "realserve":
        print(f"reconcile: {args.input} holds a "
              f"{artifact.get('kind')!r} artifact, need 'realserve' "
              "(run 'loadgen' first)", file=sys.stderr)
        return 2
    measured = artifact.get("extra") or {}
    scale = measured.get("scale", "fast" if args.fast else "default")
    config = FAST if scale == "fast" else DEFAULT
    started = time.perf_counter()
    try:
        report = reconcile_report(
            measured, config,
            use_cache=measured.get("use_cache", True),
            governor=measured.get("governor", "off"),
            slo_fps=measured.get("slo_fps"),
            backend=measured.get("backend"))
    except (ValueError, KeyError) as exc:
        print(f"reconcile: {exc.args[0]}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    print_table(report["rows"],
                title=f"sim-vs-real reconciliation ({elapsed:.1f}s wall)")
    print_table([{k: report[k] for k in (
        "mix", "rate_hz", "duration_s", "seed", "sessions_measured",
        "sessions_predicted", "frames_measured", "frames_predicted")}],
        title="matched run")
    json_dir = "bench-artifacts" if args.json_out is None else args.json_out
    path = write_bench_json(
        json_dir, "reconcile", report["rows"], elapsed, config=config,
        extra={k: v for k, v in report.items() if k != "rows"},
        kind="reconcile")
    print(f"\nwrote {path}")
    return 0


def run_bench_command(args, config) -> int:
    from ..perf.bench import run_benchmarks
    if args.quick:
        config = FAST  # --quick implies the FAST scale
    kernels = None
    if args.kernels is not None:
        kernels = [part.strip() for part in args.kernels.split(",")
                   if part.strip()]
        if not kernels:
            print(f"bench: bad --kernels {args.kernels!r}; expected "
                  "comma-separated kernel names", file=sys.stderr)
            return 2
    if args.repeat < 1:
        print(f"bench: --repeat must be >= 1 (got {args.repeat})",
              file=sys.stderr)
        return 2
    if args.engine_workers is not None and args.backend != "parallel":
        print("bench: --engine-workers requires --backend parallel",
              file=sys.stderr)
        return 2
    started = time.perf_counter()
    try:
        rows, extra = run_benchmarks(config=config, quick=args.quick,
                                     kernels=kernels, repeat=args.repeat,
                                     backend=args.backend,
                                     engine_workers=args.engine_workers)
    except KeyError as exc:
        print(f"bench: {exc.args[0]}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    # Rows are heterogeneous (per-kernel derived metrics); show the union
    # of their columns instead of the first row's keys.  The per-kernel
    # "sections" dicts are structured artifact detail, not a table cell.
    columns = list(dict.fromkeys(key for row in rows for key in row
                                 if key != "sections"))
    print_table(rows, columns=columns,
                title=f"bench: {len(rows)} kernels ({elapsed:.1f}s wall)")
    # Bench runs are the perf trajectory: every run persists its
    # machine-readable artifact (compare runs with compare_bench.py).
    json_dir = "bench-artifacts" if args.json_out is None else args.json_out
    path = write_bench_json(json_dir, "perf", rows, elapsed, config=config,
                            extra=extra, kind="perf")
    print(f"\nwrote {path}")
    return 0


def run_frontier_command(args, config) -> int:
    from .frontier import run_frontier
    try:
        cell = from_cli_args(FRONTIER_COMMAND, args)
        rates = (parse_rates(args.rates) if args.rates is not None
                 else None)
    except RunConfigError as exc:
        print(f"frontier: {exc.args[0]}", file=sys.stderr)
        return 2
    # --governor restricts the sweep to one mode (default: all three).
    modes = GOVERNOR_MODES if args.governor is None else (args.governor,)
    kwargs = {
        key: value for key, value in (
            ("rates", rates),
            ("duration_s", cell.duration_s),
            ("frames", cell.frames),
        ) if value is not None}
    started = time.perf_counter()
    try:
        rows, summary = run_frontier(
            config, mix=cell.workloads,
            workers=4 if cell.workers is None else cell.workers,
            placement=cell.placement or "least_loaded",
            queue_limit=4 if cell.queue_limit is None else cell.queue_limit,
            seed=cell.seed, modes=modes,
            slo_fps=cell.slo_fps, use_cache=cell.use_cache, **kwargs)
    except (ValueError, KeyError) as exc:
        print(f"frontier: {exc.args[0]}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    print_table(rows, title=f"frontier: {len(rows)} cells "
                            f"({elapsed:.1f}s wall)")
    print_table([summary], title="sweep")
    json_dir = "bench-artifacts" if args.json_out is None else args.json_out
    path = write_bench_json(json_dir, FRONTIER_COMMAND, rows, elapsed,
                            config=config, extra=summary,
                            kind=FRONTIER_COMMAND)
    print(f"\nwrote {path}")
    return 0


def run_trace_command(args) -> int:
    from ..obs.analyze import main as analyze_main
    if len(args.extra) != 2 or args.extra[0] != "analyze":
        print("trace: usage: trace analyze PATH [--top N]",
              file=sys.stderr)
        return 2
    if args.top < 1:
        print(f"trace: --top must be >= 1 (got {args.top})",
              file=sys.stderr)
        return 2
    return analyze_main(args.extra[1], top=args.top)


def run_experiment_command(args) -> int:
    from .runner import ExperimentTable, run_table
    if args.table is None:
        print("experiment: --table is required (a JSON/TOML factorial "
              "run table; see docs/experiments.md)", file=sys.stderr)
        return 2
    try:
        table = ExperimentTable.from_file(args.table)
    except OSError as exc:
        print(f"experiment: {exc}", file=sys.stderr)
        return 2
    except (RunConfigError, ValueError, KeyError) as exc:
        print(f"experiment: {exc.args[0]}", file=sys.stderr)
        return 2
    out_dir = "bench-artifacts" if args.out is None else args.out
    try:
        rows, extra, path = run_table(
            table, out_dir, resume=args.resume,
            default_scale="fast" if args.fast else "default",
            log=print)
    except (RunConfigError, ValueError, KeyError, OSError) as exc:
        message = (exc.args[0] if isinstance(exc, (ValueError, KeyError))
                   else exc)
        print(f"experiment: {message}", file=sys.stderr)
        return 2
    columns = list(dict.fromkeys(key for row in rows for key in row))
    print_table(rows, columns=columns,
                title=f"experiment {table.name}: {len(rows)} cells "
                      f"({extra['executed']} executed, "
                      f"{extra['resumed']} resumed)")
    print(f"\nwrote {path}")
    return 0


def _run_observed(args, command) -> int:
    """Run one observed command under an obs activation.

    Metrics are always registered (they snapshot into the command's
    BENCH artifacts via ``bench_payload``); a tracer is attached only
    with ``--trace PATH``, and the trace is written after a successful
    run.
    """
    from ..obs import MetricsRegistry, Observation, Tracer, activate
    tracer = Tracer() if args.trace is not None else None
    with activate(Observation(tracer=tracer, metrics=MetricsRegistry())):
        code = command()
    if tracer is not None and code == 0:
        path = tracer.write(args.trace)
        print(f"wrote {path} ({len(tracer)} trace events)")
    return code


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = FAST if args.fast else DEFAULT

    if args.json_out is not None:
        from pathlib import Path
        target = Path(args.json_out)
        if target.exists() and not target.is_dir():
            print(f"--json-out: {args.json_out!r} exists and is not a "
                  "directory", file=sys.stderr)
            return 2
    if args.extra and args.figure != TRACE_COMMAND:
        print(f"{args.figure}: unexpected argument(s) "
              f"{' '.join(args.extra)!r} (only the 'trace' command takes "
              "positional arguments)", file=sys.stderr)
        return 2
    if args.trace is not None and args.figure not in OBSERVED_COMMANDS:
        print(f"--trace applies to {'/'.join(OBSERVED_COMMANDS)} runs "
              "(use 'trace analyze PATH' to inspect an existing trace)",
              file=sys.stderr)
        return 2

    if args.figure == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        print(BENCH_COMMAND)
        print(CLUSTER_COMMAND)
        print(EXPERIMENT_COMMAND)
        print(FRONTIER_COMMAND)
        print(LOADGEN_COMMAND)
        print(RECONCILE_COMMAND)
        print(SERVE_COMMAND)
        print(SERVE_LIVE_COMMAND)
        print(TRACE_COMMAND)
        print(WORKLOADS_COMMAND)
        return 0
    if args.figure == WORKLOADS_COMMAND:
        return run_workloads_listing()
    if args.figure == TRACE_COMMAND:
        return run_trace_command(args)
    if args.figure == SERVE_COMMAND:
        return _run_observed(args, lambda: run_serve(args, config))
    if args.figure == CLUSTER_COMMAND:
        return _run_observed(args,
                             lambda: run_cluster_command(args, config))
    if args.figure == FRONTIER_COMMAND:
        return _run_observed(args,
                             lambda: run_frontier_command(args, config))
    if args.figure == SERVE_LIVE_COMMAND:
        return run_serve_live(args, config)
    if args.figure == LOADGEN_COMMAND:
        return _run_observed(args,
                             lambda: run_loadgen_command(args, config))
    if args.figure == RECONCILE_COMMAND:
        return run_reconcile_command(args, config)
    if args.figure == BENCH_COMMAND:
        return run_bench_command(args, config)
    if args.figure == EXPERIMENT_COMMAND:
        return _run_observed(args, lambda: run_experiment_command(args))
    if args.figure == "all":
        for name in sorted(EXPERIMENTS):
            run_figure(name, config, json_dir=args.json_out)
        return 0
    if args.figure not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        print(f"unknown figure {args.figure!r}; expected one of: {known}, "
              f"all, bench, serve, serve-live, loadgen, reconcile, "
              f"cluster, experiment, frontier, trace, workloads, list",
              file=sys.stderr)
        return 2
    run_figure(args.figure, config, json_dir=args.json_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
