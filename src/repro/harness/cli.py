"""Command-line experiment runner.

Run any figure reproduction, or the multi-session serving workload, from a
shell::

    python -m repro.harness.cli fig07
    python -m repro.harness.cli fig19 --fast
    python -m repro.harness.cli all --fast --json-out bench-artifacts
    python -m repro.harness.cli serve --sessions 8 --fast
    python -m repro.harness.cli workloads
    python -m repro.harness.cli serve --fast \\
        --workload vr-lego:3 --workload dolly-chair:2

``--fast`` uses the reduced test-scale configuration (seconds per figure);
the default scale matches the benchmarks (minutes for the quality figures).
``--json-out DIR`` persists every run's rows as ``BENCH_<figure>.json`` so
automated runs leave machine-readable perf history.  ``serve --workload
NAME[:N]`` mixes named workload specs (see the ``workloads`` command) into
one heterogeneous serve with the shared cross-session reference cache.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..hw.soc import VARIANTS
from ..workloads import list_workloads, parse_mix
from .configs import ALGORITHMS, DEFAULT, FAST, scene_of
from .experiments import EXPERIMENTS
from .reporting import print_table, write_bench_json

SERVE_COMMAND = "serve"
WORKLOADS_COMMAND = "workloads"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Reproduce individual Cicero (ISCA 2024) figures, or "
                    "serve a batched multi-session rendering workload.")
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig07), 'all', 'serve', 'workloads' to list "
             "the named workload registry, or 'list' to print available ids")
    parser.add_argument(
        "--fast", action="store_true",
        help="use the reduced test-scale configuration")
    parser.add_argument(
        "--json-out", metavar="DIR", default=None,
        help="also write BENCH_<figure>.json artifacts into DIR")
    serve = parser.add_argument_group(
        "serve options", "only used with the 'serve' command")
    serve.add_argument("--sessions", type=int, default=None,
                       help="number of concurrent sessions (default 4; "
                            "with --workload the mix counts decide)")
    serve.add_argument("--frames", type=int, default=None,
                       help="frames per session (default: config scale)")
    serve.add_argument("--scheduler", choices=("round_robin", "deadline"),
                       default="round_robin",
                       help="session scheduling policy")
    serve.add_argument("--variant", choices=VARIANTS, default=None,
                       help="SoC variant to price frames under "
                            "(default cicero)")
    serve.add_argument("--scene", action="append", dest="scenes",
                       metavar="NAME",
                       help="scene(s) to cycle sessions over (repeatable; "
                            "default lego)")
    serve.add_argument("--algorithm", default=None,
                       help="NeRF algorithm for every session "
                            "(default directvoxgo)")
    serve.add_argument("--workload", action="append", dest="workloads",
                       metavar="NAME[:N]",
                       help="named workload spec to serve, optionally "
                            "duplicated N times (repeatable; see the "
                            "'workloads' command; the spec fixes scene/"
                            "algorithm/variant, so --scene/--algorithm/"
                            "--variant/--sessions do not apply)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the shared cross-session reference "
                            "cache (outputs are bit-identical either way)")
    return parser


def run_figure(name: str, config, json_dir: str | None = None) -> None:
    started = time.time()
    result = EXPERIMENTS[name](config)
    rows = result if isinstance(result, list) else [result]
    elapsed = time.time() - started
    print_table(rows, title=f"{name} ({elapsed:.1f}s)")
    if json_dir is not None:
        write_bench_json(json_dir, name, rows, elapsed, config=config)


def run_workloads_listing() -> int:
    rows = [spec.describe() for spec in list_workloads()]
    print_table(rows, title=f"workload registry ({len(rows)} specs)")
    return 0


def run_serve(args, config) -> int:
    from .serve import run_serve as serve_experiment
    if args.frames is not None and args.frames < 1:
        print("serve: --frames must be >= 1", file=sys.stderr)
        return 2
    mix = None
    if args.workloads:
        if args.scenes or args.algorithm is not None \
                or args.variant is not None or args.sessions is not None:
            print("serve: --workload cannot be combined with --scene/"
                  "--algorithm/--variant/--sessions (the specs and mix "
                  "counts fix them)", file=sys.stderr)
            return 2
        try:
            mix = parse_mix(args.workloads)
        except (KeyError, ValueError) as exc:
            print(f"serve: {exc.args[0]}", file=sys.stderr)
            return 2
        num_sessions = sum(count for _, count in mix)
    else:
        sessions = 4 if args.sessions is None else args.sessions
        if sessions < 1:
            print("serve: --sessions must be >= 1", file=sys.stderr)
            return 2
        algorithm = args.algorithm or "directvoxgo"
        if algorithm not in ALGORITHMS:
            print(f"serve: unknown algorithm {algorithm!r}; one of "
                  f"{ALGORITHMS}", file=sys.stderr)
            return 2
        scenes = tuple(args.scenes or ("lego",))
        for name in scenes:
            try:
                scene_of(name)
            except KeyError as exc:
                print(f"serve: {exc.args[0]}", file=sys.stderr)
                return 2
        num_sessions = sessions
    started = time.time()
    if mix is not None:
        rows, summary = serve_experiment(
            config, scheduler=args.scheduler, frames=args.frames,
            workloads=mix, use_cache=not args.no_cache)
    else:
        rows, summary = serve_experiment(
            config, sessions=sessions, scheduler=args.scheduler,
            variant=args.variant or "cicero", frames=args.frames,
            scene_names=scenes, algorithm=algorithm,
            use_cache=not args.no_cache)
    elapsed = time.time() - started
    print_table(rows, title=f"serve: {num_sessions} sessions "
                            f"({elapsed:.1f}s wall)")
    cache = summary.get("cache") or {}
    print_table([{k: v for k, v in summary.items() if k != "cache"}],
                title="aggregate")
    if cache:
        print_table([{"cache": name, **stats}
                     for name, stats in sorted(cache.items())],
                    title="shared caches (counters: this run; "
                          "entries/bytes: current totals)")
    if args.json_out is not None:
        name = "serve_mixed" if mix is not None else SERVE_COMMAND
        write_bench_json(args.json_out, name, rows, elapsed,
                         config=config, extra=summary)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = FAST if args.fast else DEFAULT

    if args.json_out is not None:
        from pathlib import Path
        target = Path(args.json_out)
        if target.exists() and not target.is_dir():
            print(f"--json-out: {args.json_out!r} exists and is not a "
                  "directory", file=sys.stderr)
            return 2

    if args.figure == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        print(SERVE_COMMAND)
        print(WORKLOADS_COMMAND)
        return 0
    if args.figure == WORKLOADS_COMMAND:
        return run_workloads_listing()
    if args.figure == SERVE_COMMAND:
        return run_serve(args, config)
    if args.figure == "all":
        for name in sorted(EXPERIMENTS):
            run_figure(name, config, json_dir=args.json_out)
        return 0
    if args.figure not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        print(f"unknown figure {args.figure!r}; expected one of: {known}, "
              f"all, serve, workloads, list", file=sys.stderr)
        return 2
    run_figure(args.figure, config, json_dir=args.json_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
