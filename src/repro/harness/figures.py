"""Experiment runners: one entry point per paper figure.

Each ``figNN_*`` function assembles the workload, runs the relevant models,
and returns plain ``list[dict]`` rows (plus sometimes a summary dict) that
the benchmarks print and assert on.  DESIGN.md's per-experiment index maps
each figure to its runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..baselines.ds2 import DS2Renderer
from ..baselines.temporal import TemporalWarpRenderer
from ..core.layout.sram_layout import FeatureMajorLayout
from ..core.sparw.disocclusion import overlap_fraction
from ..core.sparw.pipeline import SparwRenderer, SparwSequenceResult
from ..core.sparw.warp import warp_frame
from ..core.streaming.scheduler import FullyStreamingScheduler
from ..hw.gu import GatheringUnitModel, GUConfig
from ..hw.remote import RemoteConfig, RemoteScenario
from ..hw.rivals import NGPCModel, NeuRexModel
from ..hw.soc import SoCModel, SparwWorkloads
from ..hw.workload import FrameWorkload, workload_from_stats
from ..memsys.cache import simulate_belady
from ..memsys.trace import analyze_streaming, interleaved_gather_trace
from ..metrics.quality import mean_psnr
from ..scenes.library import SYNTHETIC_SCENES
from ..workloads import WorkloadSpec
from .configs import (
    ALGORITHMS,
    DEFAULT,
    ExperimentConfig,
    build_renderer,
    ground_truth_sequence,
    make_camera,
)

__all__ = [
    "full_frame_profile", "sparw_workloads_from_result", "FrameProfile",
    "figure_workload", "run_sparw",
    "fig02_fps_model_size", "fig03_stage_breakdown", "fig04_nonstreaming",
    "fig05_cache_miss", "fig06_bank_conflicts", "fig07_overlap",
    "fig09_disocclusion", "fig16_quality", "fig17_gpu_speedup",
    "fig18_gpu_distribution", "fig19_local_remote", "fig20_gather_speedup",
    "fig21_memory_saving", "fig22_window_sensitivity", "fig23_vft_sweep",
    "fig24_rivals", "fig25_fps_sensitivity", "fig26_phi_sweep",
    "EXPERIMENTS",
]


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------

@dataclass
class FrameProfile:
    """Everything the hardware model needs about one full-frame render."""

    workload: FrameWorkload
    conflict_slowdown: float
    streaming_report: object
    gather_groups: list
    frame: object


@lru_cache(maxsize=None)
def _cached_profile(algorithm: str, scene_name: str,
                    config: ExperimentConfig) -> FrameProfile:
    trajectory, _ = ground_truth_sequence(scene_name, config)
    renderer = build_renderer(algorithm, scene_name, config)
    camera = make_camera(config, trajectory[0])
    frame, out = renderer.render_frame(camera, record_gather=True)

    scheduler = FullyStreamingScheduler(
        buffer_bytes=config.vft_buffer_bytes,
        baseline_cache_bytes=config.onchip_cache_bytes,
        cache_block_bytes=config.cache_block_bytes)
    report = scheduler.analyze(out.gather_groups)

    layout = FeatureMajorLayout(num_banks=config.fig6_banks)
    conflict = _simulate_feature_major(layout, out.gather_groups,
                                       config.fig6_rays, max_samples=20000)

    workload = workload_from_stats(out.stats, streaming_report=report,
                                   conflict_slowdown=conflict.slowdown)
    return FrameProfile(workload=workload,
                        conflict_slowdown=conflict.slowdown,
                        streaming_report=report,
                        gather_groups=out.gather_groups,
                        frame=frame)


def _simulate_feature_major(layout: FeatureMajorLayout, groups: list,
                            concurrent_rays: int, max_samples: int):
    """Aggregate feature-major conflicts across gather groups.

    Groups with different vertices-per-sample (planes vs vectors, levels)
    are simulated separately and their cycle counts merged.
    """
    total = None
    for group in groups:
        stats = layout.simulate(group.vertex_ids[:max_samples],
                                concurrent_rays=concurrent_rays)
        total = stats if total is None else total.merge(stats)
    return total


def full_frame_profile(algorithm: str, scene_name: str = "lego",
                       config: ExperimentConfig = DEFAULT) -> FrameProfile:
    """Cached full-frame render + memory analysis for one algorithm/scene."""
    return _cached_profile(algorithm, scene_name, config)


def sparw_workloads_from_result(result: SparwSequenceResult,
                                profile: FrameProfile,
                                window: int) -> SparwWorkloads:
    """Average per-frame SPARW workloads from a rendered sequence.

    Sparse-path DRAM traffic is scaled from the full-frame profile by the
    sample ratio (traffic tracks gathered samples to first order).
    """
    sparse = result.total_sparse_stats()
    frames = max(result.num_frames, 1)
    full = profile.workload

    sample_ratio = (sparse.num_samples / max(full.num_samples, 1)) / frames
    target = workload_from_stats(
        _scale_stats(sparse, 1.0 / frames),
        conflict_slowdown=profile.conflict_slowdown,
        warp_points=int(np.mean([r.warp_points for r in result.records])))
    target.baseline_traffic = full.baseline_traffic.scaled(sample_ratio)
    target.streaming_traffic = full.streaming_traffic.scaled(sample_ratio)
    target.rit_bytes = int(full.rit_bytes * sample_ratio)
    return SparwWorkloads(target=target, reference=full, window=window)


def _scale_stats(stats, factor: float):
    from ..nerf.renderer import RenderStats
    return RenderStats(
        num_rays=int(stats.num_rays * factor),
        num_samples=int(stats.num_samples * factor),
        mlp_macs=int(stats.mlp_macs * factor),
        gather_vertex_accesses=int(stats.gather_vertex_accesses * factor),
        gather_bytes=int(stats.gather_bytes * factor),
    )


def figure_workload(algorithm: str, scene_name: str = "lego",
                    window: int | None = None, policy: str = "extrapolated",
                    phi: float | None = None,
                    degrees_per_frame: float | None = None) -> WorkloadSpec:
    """The figure harness's SPARW configuration as a declarative spec.

    Figure experiments and the serving layer consume the same
    :class:`WorkloadSpec` shape; an unset ``degrees_per_frame`` resolves to
    the config scale's value at build time, keeping spec-built orbits
    pose-identical to :func:`ground_truth_sequence` trajectories.
    """
    params = {}
    if degrees_per_frame is not None:
        params["degrees_per_frame"] = degrees_per_frame
    return WorkloadSpec.make(
        f"fig-{algorithm}-{scene_name}", scene=scene_name,
        algorithm=algorithm, trajectory="orbit", window=window,
        policy=policy, phi=phi, **params)


@lru_cache(maxsize=None)
def _cached_sparw_sequence(spec: WorkloadSpec, config: ExperimentConfig
                           ) -> SparwSequenceResult:
    return spec.run_solo(config)


def run_sparw(algorithm: str, scene_name: str = "lego",
              config: ExperimentConfig = DEFAULT, window: int | None = None,
              policy: str = "extrapolated", phi: float | None = None,
              degrees_per_frame: float | None = None) -> SparwSequenceResult:
    """Cached SPARW sequence render of a figure workload spec."""
    spec = figure_workload(algorithm, scene_name, window=window,
                           policy=policy, phi=phi,
                           degrees_per_frame=degrees_per_frame)
    return _cached_sparw_sequence(spec, config)


def _sequence_psnr(result_frames: list, gt_frames: list) -> float:
    return mean_psnr([f.image for f in result_frames],
                     [f.image for f in gt_frames])


# ---------------------------------------------------------------------------
# Sec. II characterisation (Figs. 2-7)
# ---------------------------------------------------------------------------

def fig02_fps_model_size(config: ExperimentConfig = DEFAULT,
                         scene_name: str = "lego") -> list:
    """Frame rate (simulated mobile GPU) vs model size per algorithm."""
    from .configs import build_field
    soc = SoCModel(feature_dim=config.feature_dim)
    rows = []
    for algorithm in ALGORITHMS:
        field = build_field(algorithm, scene_name, config)
        profile = full_frame_profile(algorithm, scene_name, config)
        cost = soc.price_nerf(profile.workload, "gpu")
        rows.append({
            "algorithm": algorithm,
            "model_mb": field.model_size_bytes / 1e6,
            "fps": 1.0 / cost.time_s,
            "frame_ms": cost.time_s * 1e3,
        })
    return rows


def fig03_stage_breakdown(config: ExperimentConfig = DEFAULT,
                          scene_name: str = "lego") -> list:
    """Normalised I/G/F execution breakdown on the GPU."""
    from ..hw.gpu import GPUModel
    gpu = GPUModel()
    rows = []
    for algorithm in ALGORITHMS:
        profile = full_frame_profile(algorithm, scene_name, config)
        breakdown = gpu.frame_breakdown(profile.workload)
        total = breakdown.total
        rows.append({
            "algorithm": algorithm,
            "indexing": breakdown.indexing / total,
            "gathering": breakdown.gathering / total,
            "computation": breakdown.computation / total,
        })
    return rows


def fig04_nonstreaming(config: ExperimentConfig = DEFAULT,
                       scene_name: str = "lego") -> list:
    """Non-streaming DRAM access fraction: pixel-centric vs fully-streaming."""
    rows = []
    for algorithm in ALGORITHMS:
        profile = full_frame_profile(algorithm, scene_name, config)
        trace = interleaved_gather_trace(profile.gather_groups)
        coalesced = trace.coalesced(config.cache_block_bytes)
        analysis = analyze_streaming(coalesced)
        report = profile.streaming_report
        rows.append({
            "algorithm": algorithm,
            "pixel_centric_nonstreaming": analysis.non_streaming_fraction,
            "fully_streaming_nonstreaming": 1.0 - report.fs_streaming_fraction,
        })
    return rows


def fig05_cache_miss(config: ExperimentConfig = DEFAULT,
                     scene_name: str = "lego",
                     max_accesses: int = 400_000) -> list:
    """Oracle (Belady) miss rate of feature gathering with the 2 MB buffer."""
    rows = []
    for algorithm in ALGORITHMS:
        profile = full_frame_profile(algorithm, scene_name, config)
        trace = interleaved_gather_trace(profile.gather_groups)
        addresses = trace.addresses[:max_accesses]
        stats = simulate_belady(addresses, config.onchip_cache_bytes,
                                block_bytes=config.cache_block_bytes)
        rows.append({
            "algorithm": algorithm,
            "oracle_miss_rate": stats.miss_rate,
            "accesses": int(len(addresses)),
        })
    return rows


def fig06_bank_conflicts(config: ExperimentConfig = DEFAULT,
                         scene_name: str = "lego",
                         max_samples: int = 30_000) -> list:
    """Feature-major bank-conflict rate (16 banks / 16 rays) per algorithm."""
    from ..core.layout.sram_layout import ChannelMajorLayout
    rows = []
    for algorithm in ALGORITHMS:
        profile = full_frame_profile(algorithm, scene_name, config)
        feature_major = FeatureMajorLayout(num_banks=config.fig6_banks)
        fm16 = _simulate_feature_major(feature_major, profile.gather_groups,
                                       config.fig6_rays, max_samples)
        fm64 = _simulate_feature_major(feature_major, profile.gather_groups,
                                       64, max_samples)
        channel_major = ChannelMajorLayout(feature_dim=config.feature_dim)
        cm = channel_major.simulate(profile.gather_groups[0].vertex_ids[:8000])
        rows.append({
            "algorithm": algorithm,
            "feature_major_16rays": fm16.conflict_rate,
            "feature_major_64rays": fm64.conflict_rate,
            "channel_major": cm.conflict_rate,
        })
    return rows


def fig07_overlap(config: ExperimentConfig = DEFAULT,
                  scene_names: tuple = None) -> list:
    """Adjacent-frame overlap fraction across the synthetic suite."""
    names = scene_names or tuple(sorted(SYNTHETIC_SCENES))
    rows = []
    for name in names:
        trajectory, gt_frames = ground_truth_sequence(name, config)
        camera = make_camera(config)
        overlaps = []
        for i in range(len(gt_frames) - 1):
            warp = warp_frame(gt_frames[i], camera.with_pose(trajectory[i]),
                              camera.with_pose(trajectory[i + 1]))
            overlaps.append(overlap_fraction(warp))
        rows.append({
            "scene": name,
            "overlap_mean": float(np.mean(overlaps)),
            "overlap_std": float(np.std(overlaps)),
        })
    return rows


def fig09_disocclusion(config: ExperimentConfig = DEFAULT,
                       scene_name: str = "lego",
                       algorithm: str = "directvoxgo") -> dict:
    """Naive warping vs SPARW: hole counts and quality on one frame pair."""
    trajectory, gt_frames = ground_truth_sequence(scene_name, config)
    renderer = build_renderer(algorithm, scene_name, config)
    camera = make_camera(config)
    mid = len(trajectory.poses) // 2

    reference, _ = renderer.render_frame(camera.with_pose(trajectory[0]))
    warp = warp_frame(reference, camera.with_pose(trajectory[0]),
                      camera.with_pose(trajectory[mid]))
    sparw = SparwRenderer(renderer, camera, window=mid + 1)
    frame, _, classification, _ = sparw.render_target(reference,
                                                      trajectory[mid])
    gt = gt_frames[mid].image
    naive = np.where(warp.hole_mask[..., None],
                     np.zeros_like(warp.image), warp.image)
    return {
        "hole_pixels_naive": int(warp.hole_mask.sum()),
        "hole_pixels_sparw": 0,
        "disoccluded_fraction": classification.disoccluded_fraction,
        "psnr_naive": mean_psnr([naive], [gt]),
        "psnr_sparw": mean_psnr([frame.image], [gt]),
    }


# ---------------------------------------------------------------------------
# Quality (Figs. 16, 25) and software results (Figs. 17, 18)
# ---------------------------------------------------------------------------

def _baseline_sequence(algorithm, scene_name, config,
                       degrees_per_frame=None) -> list:
    renderer = build_renderer(algorithm, scene_name, config)
    camera = make_camera(config)
    trajectory, _ = ground_truth_sequence(scene_name, config,
                                          degrees_per_frame=degrees_per_frame)
    return [renderer.render_frame(camera.with_pose(p))[0]
            for p in trajectory.poses]


def fig16_quality(config: ExperimentConfig = DEFAULT,
                  scene_names: tuple = ("lego", "materials"),
                  algorithms: tuple = ALGORITHMS,
                  windows: tuple = (6, 16)) -> list:
    """PSNR of baseline / Cicero-N / DS-2 / TEMP-16 per algorithm+scene."""
    rows = []
    for algorithm in algorithms:
        for scene_name in scene_names:
            trajectory, gt = ground_truth_sequence(scene_name, config)
            renderer = build_renderer(algorithm, scene_name, config)
            camera = make_camera(config)

            row = {"algorithm": algorithm, "scene": scene_name}
            baseline = _baseline_sequence(algorithm, scene_name, config)
            row["baseline"] = _sequence_psnr(baseline, gt)
            for window in windows:
                result = run_sparw(algorithm, scene_name, config,
                                   window=window)
                row[f"cicero_{window}"] = _sequence_psnr(result.frames, gt)
            ds2 = DS2Renderer(renderer, camera)
            ds2_frames, _ = ds2.render_sequence(trajectory.poses)
            row["ds2"] = _sequence_psnr(ds2_frames, gt)
            temp = TemporalWarpRenderer(renderer, camera, window=16)
            temp_result = temp.render_sequence(trajectory.poses)
            row["temp16"] = _sequence_psnr(temp_result.frames, gt)
            rows.append(row)
    return rows


def fig17_gpu_speedup(config: ExperimentConfig = DEFAULT,
                      scene_name: str = "lego",
                      window: int = 16) -> list:
    """Pure-software Cicero vs DS-2: speed-up and energy saving on the GPU."""
    soc = SoCModel(feature_dim=config.feature_dim)
    rows = []
    for algorithm in ALGORITHMS:
        profile = full_frame_profile(algorithm, scene_name, config)
        base = soc.price_nerf(profile.workload, "gpu")

        result = run_sparw(algorithm, scene_name, config, window=window)
        wls = sparw_workloads_from_result(result, profile, window)
        cicero = soc.price_sparw_local(wls, "gpu")

        # DS-2 renders every frame at quarter ray count.
        ds2 = soc.price_nerf(profile.workload.scaled(0.25), "gpu")
        rows.append({
            "algorithm": algorithm,
            "cicero_speedup": base.time_s / cicero.time_s,
            "cicero_energy_saving": base.energy_j / cicero.energy_j,
            "ds2_speedup": base.time_s / ds2.time_s,
            "ds2_energy_saving": base.energy_j / ds2.energy_j,
        })
    return rows


def fig18_gpu_distribution(config: ExperimentConfig = DEFAULT,
                           scene_name: str = "lego",
                           algorithm: str = "instant_ngp",
                           windows: tuple = (6, 16)) -> list:
    """GPU execution-time distribution of Cicero-N (full/sparse/warp)."""
    soc = SoCModel(feature_dim=config.feature_dim)
    rows = []
    profile = full_frame_profile(algorithm, scene_name, config)
    for window in windows:
        result = run_sparw(algorithm, scene_name, config, window=window)
        wls = sparw_workloads_from_result(result, profile, window)
        full_cost = soc.price_nerf(wls.reference, "gpu").scaled(1.0 / window)
        target_cost = soc.price_nerf(wls.target, "gpu")
        warp_time = target_cost.stage_times.get("warping", 0.0)
        sparse_time = target_cost.time_s - warp_time
        total = full_cost.time_s + target_cost.time_s
        rows.append({
            "config": f"cicero_{window}",
            "full_frame_nerf": full_cost.time_s / total,
            "sparse_nerf": sparse_time / total,
            "others": warp_time / total,
        })
    return rows


# ---------------------------------------------------------------------------
# Architecture results (Figs. 19-24)
# ---------------------------------------------------------------------------

def fig19_local_remote(config: ExperimentConfig = DEFAULT,
                       scene_name: str = "lego",
                       window: int = 16) -> list:
    """End-to-end speed-up/energy of SPARW / +FS / Cicero, local and remote."""
    soc = SoCModel(feature_dim=config.feature_dim)
    frame_bytes = config.image_size * config.image_size * 4
    remote = RemoteScenario(soc, RemoteConfig())
    rows = []
    for algorithm in ALGORITHMS:
        profile = full_frame_profile(algorithm, scene_name, config)
        result = run_sparw(algorithm, scene_name, config, window=window)
        wls = sparw_workloads_from_result(result, profile, window)

        base_local = soc.price_nerf(profile.workload, "baseline")
        base_remote = remote.price_baseline_remote(profile.workload,
                                                   frame_bytes)
        row = {"algorithm": algorithm}
        for variant in ("sparw", "sparw_fs", "cicero"):
            local = soc.price_sparw_local(wls, variant)
            row[f"{variant}_speedup"] = base_local.time_s / local.time_s
            row[f"{variant}_energy"] = local.energy_j / base_local.energy_j
            rem = remote.price_sparw_remote(wls, variant, frame_bytes)
            row[f"{variant}_remote_speedup"] = base_remote.time_s / rem.time_s
            row[f"{variant}_remote_energy"] = rem.energy_j / max(
                base_remote.energy_j, 1e-12)
        rows.append(row)
    return rows


def fig20_gather_speedup(config: ExperimentConfig = DEFAULT,
                         scene_name: str = "lego") -> list:
    """Feature-gathering speed-up and energy saving of the GU over the GPU."""
    from ..hw.gpu import GPUModel
    gpu = GPUModel()
    gu = GatheringUnitModel(GUConfig(vft_bytes=config.vft_buffer_bytes),
                            feature_dim=config.feature_dim)
    rows = []
    for algorithm in ALGORITHMS:
        profile = full_frame_profile(algorithm, scene_name, config)
        gpu_time = gpu.gathering_time(profile.workload)
        gpu_energy = (gpu_time * gpu.config.average_power_w)
        cost = gu.gather_cost(profile.workload)
        rows.append({
            "algorithm": algorithm,
            "gather_speedup": gpu_time / cost.time_s,
            "gather_energy_saving": gpu_energy / cost.energy_j,
            "conflict_slowdown_removed": profile.conflict_slowdown,
        })
    return rows


def fig21_memory_saving(config: ExperimentConfig = DEFAULT,
                        scene_name: str = "lego") -> list:
    """DRAM energy-saving split: traffic reduction vs random->stream.

    For each algorithm the saving decomposes against a counterfactual that
    moves the same fully-streaming byte volume but at random-access cost.
    Algorithms whose hashed levels revert (Instant-NGP) can see fs traffic
    exceed the cached baseline at reproduction scale; their shares are
    reported as-is (negative traffic share, >1 streaming share).
    """
    from ..memsys.energy import DEFAULT_ENERGY as e
    rows = []
    for algorithm in ALGORITHMS:
        report = full_frame_profile(algorithm, scene_name,
                                    config).streaming_report
        base = e.dram_energy(report.baseline_streaming_bytes,
                             report.baseline_random_bytes)
        fs = e.dram_energy(report.fs_streaming_bytes, report.fs_random_bytes)
        # Counterfactual: same (reduced) traffic volume but still random.
        reduced_random = e.dram_energy(0.0, report.fs_bytes)
        saving = base - fs
        denom = saving if abs(saving) > 1e-18 else 1e-18
        rows.append({
            "algorithm": algorithm,
            "traffic_reduction": report.traffic_reduction,
            "dram_energy_saving": base / max(fs, 1e-18),
            "from_traffic_reduction": (base - reduced_random) / denom,
            "from_streaming": (reduced_random - fs) / denom,
        })
    return rows


def fig22_window_sensitivity(config: ExperimentConfig = DEFAULT,
                             scene_name: str = "lego",
                             algorithm: str = "instant_ngp",
                             windows: tuple = (1, 6, 11, 16, 21, 26)) -> list:
    """Speed-up and PSNR vs warping-window size (local + remote)."""
    soc = SoCModel(feature_dim=config.feature_dim)
    remote = RemoteScenario(soc, RemoteConfig())
    frame_bytes = config.image_size * config.image_size * 4
    profile = full_frame_profile(algorithm, scene_name, config)
    base_local = soc.price_nerf(profile.workload, "baseline")
    base_remote = remote.price_baseline_remote(profile.workload, frame_bytes)
    _, gt = ground_truth_sequence(scene_name, config)

    rows = []
    for window in windows:
        result = run_sparw(algorithm, scene_name, config, window=window)
        wls = sparw_workloads_from_result(result, profile, window)
        local = soc.price_sparw_local(wls, "cicero")
        rem = remote.price_sparw_remote(wls, "cicero", frame_bytes)
        rows.append({
            "window": window,
            "local_speedup": base_local.time_s / local.time_s,
            "remote_speedup": base_remote.time_s / rem.time_s,
            "psnr": _sequence_psnr(result.frames, gt),
            "disoccluded_fraction": result.mean_disoccluded_fraction(),
        })
    return rows


def fig23_vft_sweep(config: ExperimentConfig = DEFAULT,
                    scene_name: str = "lego",
                    algorithm: str = "directvoxgo",
                    sizes_kb: tuple = (8, 16, 32, 64, 128, 256)) -> list:
    """GU energy sensitivity to VFT buffer size."""
    profile = full_frame_profile(algorithm, scene_name, config)
    rows = []
    for size_kb in sizes_kb:
        gu = GatheringUnitModel(GUConfig(vft_bytes=size_kb * 1024),
                                feature_dim=config.feature_dim)
        cost = gu.gather_cost(profile.workload)
        rows.append({"vft_kb": size_kb, "gu_energy_j": cost.energy_j})
    base = next(r for r in rows if r["vft_kb"] == 32)["gu_energy_j"]
    for row in rows:
        row["normalized_energy"] = row["gu_energy_j"] / base
    return rows


def fig24_rivals(config: ExperimentConfig = DEFAULT,
                 scene_name: str = "lego",
                 window: int = 16) -> list:
    """Cicero vs NeuRex vs NGPC on Instant-NGP, normalised to the GPU."""
    algorithm = "instant_ngp"
    soc = SoCModel(feature_dim=config.feature_dim)
    profile = full_frame_profile(algorithm, scene_name, config)
    gpu_base = soc.price_nerf(profile.workload, "gpu")

    neurex = NeuRexModel().price_frame(profile.workload)
    ngpc = NGPCModel().price_frame(profile.workload)
    cicero_nosparw = soc.price_nerf(profile.workload, "cicero")
    result = run_sparw(algorithm, scene_name, config, window=window)
    wls = sparw_workloads_from_result(result, profile, window)
    cicero = soc.price_sparw_local(wls, "cicero")

    rows = [
        {"design": "neurex", "speedup_vs_gpu": gpu_base.time_s / neurex.time_s},
        {"design": "ngpc", "speedup_vs_gpu": gpu_base.time_s / ngpc.time_s},
        {"design": "cicero_no_sparw",
         "speedup_vs_gpu": gpu_base.time_s / cicero_nosparw.time_s},
        {"design": "cicero", "speedup_vs_gpu": gpu_base.time_s / cicero.time_s},
    ]
    return rows


# ---------------------------------------------------------------------------
# Real-world sensitivity (Figs. 25-26)
# ---------------------------------------------------------------------------

def fig25_fps_sensitivity(config: ExperimentConfig = DEFAULT,
                          scene_name: str = "ignatius",
                          algorithm: str = "directvoxgo",
                          windows: tuple = (6, 16)) -> list:
    """PSNR on the real-world scene at sparse (1 FPS) vs dense (30 FPS) capture.

    1 FPS capture means 30x larger pose deltas between consecutive frames;
    we sweep ``degrees_per_frame`` accordingly (0.5 deg at 30 FPS -> 15 deg
    at 1 FPS).
    """
    rows = []
    for label, dpf in (("dense_30fps", config.degrees_per_frame),
                       ("sparse_1fps", config.degrees_per_frame * 30.0)):
        _, gt = ground_truth_sequence(scene_name, config,
                                      degrees_per_frame=dpf)
        baseline = _baseline_sequence(algorithm, scene_name, config,
                                      degrees_per_frame=dpf)
        row = {"capture": label, "baseline": _sequence_psnr(baseline, gt)}
        for window in windows:
            result = run_sparw(algorithm, scene_name, config, window=window,
                               degrees_per_frame=dpf)
            row[f"cicero_{window}"] = _sequence_psnr(result.frames, gt)
        rows.append(row)
    return rows


def fig26_phi_sweep(config: ExperimentConfig = DEFAULT,
                    scene_name: str = "ignatius",
                    algorithm: str = "directvoxgo",
                    window: int = 16,
                    phis: tuple = (1.0, 2.0, 4.0, 8.0, 16.0, None)) -> list:
    """Speed-up and PSNR vs warping threshold phi on the sparse sequence."""
    dpf = config.degrees_per_frame * 30.0  # 1 FPS capture
    soc = SoCModel(feature_dim=config.feature_dim)
    profile = full_frame_profile(algorithm, scene_name, config)
    base = soc.price_nerf(profile.workload, "baseline")
    _, gt = ground_truth_sequence(scene_name, config, degrees_per_frame=dpf)

    rows = []
    for phi in phis:
        result = run_sparw(algorithm, scene_name, config, window=window,
                           phi=phi, degrees_per_frame=dpf)
        wls = sparw_workloads_from_result(result, profile, window)
        cost = soc.price_sparw_local(wls, "cicero")
        rows.append({
            "phi_deg": "none" if phi is None else phi,
            "speedup": base.time_s / cost.time_s,
            "psnr": _sequence_psnr(result.frames, gt),
            "warped_fraction": result.mean_warped_fraction(),
        })
    return rows


EXPERIMENTS = {
    "fig02": fig02_fps_model_size,
    "fig03": fig03_stage_breakdown,
    "fig04": fig04_nonstreaming,
    "fig05": fig05_cache_miss,
    "fig06": fig06_bank_conflicts,
    "fig07": fig07_overlap,
    "fig09": fig09_disocclusion,
    "fig16": fig16_quality,
    "fig17": fig17_gpu_speedup,
    "fig18": fig18_gpu_distribution,
    "fig19": fig19_local_remote,
    "fig20": fig20_gather_speedup,
    "fig21": fig21_memory_saving,
    "fig22": fig22_window_sensitivity,
    "fig23": fig23_vft_sweep,
    "fig24": fig24_rivals,
    "fig25": fig25_fps_sensitivity,
    "fig26": fig26_phi_sweep,
}
