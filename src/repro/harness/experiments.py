"""Deprecated alias for :mod:`repro.harness.figures`.

The paper-figure runners moved to ``repro.harness.figures`` so the
"experiments" name belongs to the factorial experiment runner
(:mod:`repro.harness.runner`).  This shim keeps old imports working one
release; update ``from repro.harness.experiments import ...`` to
``from repro.harness.figures import ...``.
"""

from __future__ import annotations

import warnings

from .figures import *  # noqa: F401,F403
from .figures import __all__  # noqa: F401

warnings.warn(
    "repro.harness.experiments is deprecated; the figure runners now "
    "live in repro.harness.figures (the factorial experiment runner is "
    "repro.harness.runner)", DeprecationWarning, stacklevel=2)
