"""Optional numba backend: njit'd hot kernels, bounded-error contract.

Every kernel is compiled lazily on first call (``numba`` imports are
gated, so the module is importable — and the backend registered as
unavailable — on machines without numba; the registry then resolves
``--backend numba`` to the numpy fallback with a note instead of
failing).  Loops use ``prange`` where iterations are independent
(per-sample gathers, per-pixel lifts) and stay serial where order
matters (the z-buffer resolve, the per-ray transmittance scan).

Error contract (``exact=False``): results may differ from the numpy
reference within the per-kernel tolerances in :data:`ATOL` —
``volume.composite`` replaces the log-cumsum segmented scan with a
direct sequential transmittance product (same math, different
floating-point path), while the remaining kernels perform the same
operations in the same order and are expected to match to the last
ulp.  The numba backend is never the default, so goldens stay
byte-stable regardless.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend

__all__ = ["ATOL", "NUMBA_AVAILABLE", "NumbaBackend"]

try:  # pragma: no cover - exercised only where numba wheels exist
    from numba import njit, prange
    NUMBA_AVAILABLE = True
except ImportError:  # the [perf] extra is not installed
    NUMBA_AVAILABLE = False

# Absolute tolerance of each kernel against the numpy reference (the
# bounded-error contract tests/backend/test_numba_parity.py enforces).
ATOL = {
    "field.trilinear_gather": 0.0,
    "field.accumulate_gather": 1e-12,
    "warp.gather": 0.0,
    "warp.scatter": 0.0,
    "disocclusion.classify": 0.0,
    "volume.composite": 1e-6,
}

if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba

    @njit(parallel=True, fastmath=False, cache=True)
    def _accumulate_gather3(table, base_ids, corner_offsets, omf, frac):
        n = base_ids.shape[0]
        f = table.shape[1]
        out = np.empty((n, f))
        for i in prange(n):
            for k in range(8):
                # Corner bit layout matches interp._CORNERS3: axis 0 is
                # the slowest-varying bit.  Weight products multiply in
                # axis order, exactly as the numpy kernel does.
                w0 = frac[i, 0] if (k >> 2) & 1 else omf[i, 0]
                w1 = frac[i, 1] if (k >> 1) & 1 else omf[i, 1]
                w2 = frac[i, 2] if k & 1 else omf[i, 2]
                w = (w0 * w1) * w2
                row = base_ids[i] + corner_offsets[k]
                if k == 0:
                    for c in range(f):
                        out[i, c] = table[row, c] * w
                else:
                    for c in range(f):
                        out[i, c] += table[row, c] * w
        return out

    @njit(parallel=True, fastmath=False, cache=True)
    def _accumulate_gather2(table, base_ids, corner_offsets, omf, frac):
        n = base_ids.shape[0]
        f = table.shape[1]
        out = np.empty((n, f))
        for i in prange(n):
            for k in range(4):
                w0 = frac[i, 0] if (k >> 1) & 1 else omf[i, 0]
                w1 = frac[i, 1] if k & 1 else omf[i, 1]
                w = w0 * w1
                row = base_ids[i] + corner_offsets[k]
                if k == 0:
                    for c in range(f):
                        out[i, c] = table[row, c] * w
                else:
                    for c in range(f):
                        out[i, c] += table[row, c] * w
        return out

    @njit(parallel=True, fastmath=False, cache=True)
    def _trilinear_cells(coords01, cells_float, cells_minus_1):
        n = coords01.shape[0]
        cell = np.empty((n, 3), dtype=np.int64)
        frac = np.empty((n, 3))
        for i in prange(n):
            for a in range(3):
                c = coords01[i, a]
                if c < 0.0:
                    c = 0.0
                elif c > 1.0:
                    c = 1.0
                scaled = c * cells_float[a]
                idx = np.int64(scaled)
                if idx > cells_minus_1[a]:
                    idx = cells_minus_1[a]
                cell[i, a] = idx
                frac[i, a] = scaled - idx
        return cell, frac

    @njit(parallel=True, fastmath=False, cache=True)
    def _lift_points(depth, xg, yg):
        h, w = depth.shape
        out = np.empty((h * w, 3))
        for i in prange(h):
            for j in range(w):
                d = depth[i, j]
                p = i * w + j
                out[p, 0] = xg[i, j] * d
                out[p, 1] = yg[i, j] * d
                out[p, 2] = d
        return out

    @njit(fastmath=False, cache=True)
    def _scatter_resolve(flat_ids, z, src, colors, image, depth,
                         source_index):
        # Last-wins on equal depth reproduces the numpy path's stable
        # descending-depth argsort exactly: nearest point per pixel,
        # with the later-arriving point winning ties.
        for i in range(flat_ids.shape[0]):
            p = flat_ids[i]
            if z[i] <= depth[p]:
                depth[p] = z[i]
                source_index[p] = src[i]
                s = src[i]
                image[p, 0] = colors[s, 0]
                image[p, 1] = colors[s, 1]
                image[p, 2] = colors[s, 2]

    @njit(parallel=True, fastmath=False, cache=True)
    def _classify(covered, hole, angle, threshold):
        n = covered.shape[0]
        warped = np.empty(n, dtype=np.bool_)
        disoccluded = np.empty(n, dtype=np.bool_)
        for i in prange(n):
            too_wide = covered[i] and angle[i] > threshold
            warped[i] = covered[i] and not too_wide
            disoccluded[i] = hole[i] or too_wide
        return warped, disoccluded

    @njit(fastmath=False, cache=True)
    def _composite_scan(alphas, rgbs, t_values, ray_index, num_rays):
        n = alphas.shape[0]
        rgb = np.zeros((num_rays, 3))
        depth_sum = np.zeros(num_rays)
        opacity = np.zeros(num_rays)
        trans = 1.0
        prev = np.int64(-1)
        for i in range(n):
            r = ray_index[i]
            if r != prev:
                trans = 1.0
                prev = r
            w = trans * alphas[i]
            trans *= 1.0 - alphas[i]
            rgb[r, 0] += w * rgbs[i, 0]
            rgb[r, 1] += w * rgbs[i, 1]
            rgb[r, 2] += w * rgbs[i, 2]
            depth_sum[r] += w * t_values[i]
            opacity[r] += w
        return rgb, depth_sum, opacity


class NumbaBackend(KernelBackend):
    """njit'd hot kernels (install via the ``[perf]`` extra).

    Bounded-error (:data:`ATOL`), never the default.  When numba is
    absent every method gracefully falls back to the inherited numpy
    kernels and :meth:`overrides` installs nothing, so selecting this
    backend on a numba-less machine degrades to numpy transparently.
    """

    name = "numba"
    description = ("njit'd kernels, parallel-range where safe "
                   "(bounded-error; needs the [perf] extra)")
    exact = False
    available = NUMBA_AVAILABLE
    fallback = "numpy"

    # -- kernel surface ---------------------------------------------------------

    def trilinear_gather(self, coords01, resolution, assume_clipped=False):
        """Trilinear setup; atol 0 (same truncation arithmetic)."""
        if not NUMBA_AVAILABLE:
            return super().trilinear_gather(coords01, resolution,
                                            assume_clipped)
        from ..nerf.fields.interp import setup_tables_for
        coords01 = np.ascontiguousarray(np.atleast_2d(
            np.asarray(coords01, dtype=float)))
        cells_float, cells_minus_1, vertex_shape, corner_offsets = \
            setup_tables_for(resolution, dim=3)
        cell, frac = _trilinear_cells(coords01, cells_float, cells_minus_1)
        base = np.zeros(cell.shape[0], dtype=np.int64)
        for axis, extent in enumerate(vertex_shape):
            base = base * int(extent) + cell[:, axis]
        return base, corner_offsets, (1.0 - frac, frac)

    def accumulate_gather(self, table, base_ids, corner_offsets,
                          weight_factors):
        """Corner accumulation; atol 1e-12 (same multiply/add order)."""
        if not NUMBA_AVAILABLE:
            return super().accumulate_gather(table, base_ids,
                                             corner_offsets, weight_factors)
        omf, frac = (np.ascontiguousarray(w) for w in weight_factors)
        table = np.ascontiguousarray(table)
        base_ids = np.ascontiguousarray(base_ids)
        offsets = np.ascontiguousarray(corner_offsets)
        if corner_offsets.shape[0] == 8:
            return _accumulate_gather3(table, base_ids, offsets, omf, frac)
        return _accumulate_gather2(table, base_ids, offsets, omf, frac)

    def warp_gather(self, depth, intrinsics):
        """Depth lift; atol 0 (identical per-pixel products)."""
        if not NUMBA_AVAILABLE:
            return super().warp_gather(depth, intrinsics)
        from ..geometry.pointcloud import lift_grids
        depth = np.ascontiguousarray(np.asarray(depth, dtype=float))
        xg, yg = lift_grids(intrinsics, *depth.shape)
        return _lift_points(depth, np.ascontiguousarray(xg),
                            np.ascontiguousarray(yg))

    def warp_scatter(self, flat_ids, z, src, colors, image, depth,
                     source_index):
        """Z-buffer resolve; atol 0 (ties break exactly as the sort)."""
        if not NUMBA_AVAILABLE:
            return super().warp_scatter(flat_ids, z, src, colors, image,
                                        depth, source_index)
        _scatter_resolve(np.ascontiguousarray(flat_ids),
                         np.ascontiguousarray(z),
                         np.ascontiguousarray(src),
                         np.ascontiguousarray(colors),
                         image, depth, source_index)

    def classify(self, covered, hole, angle, threshold):
        """Mask partition; atol 0 (boolean algebra)."""
        if not NUMBA_AVAILABLE or threshold is None:
            return super().classify(covered, hole, angle, threshold)
        shape = covered.shape
        warped, disoccluded = _classify(
            np.ascontiguousarray(covered).reshape(-1),
            np.ascontiguousarray(hole).reshape(-1),
            np.ascontiguousarray(angle, dtype=float).reshape(-1),
            float(threshold))
        return warped.reshape(shape), disoccluded.reshape(shape)

    def composite(self, sigmas, rgbs, t_values, deltas, ray_index,
                  num_rays):
        """Sequential-transmittance composite; atol 1e-6.

        The numpy reference computes transmittance via a clipped
        log-cumsum (an ``exp(cumsum(log(...)))`` round-trip); this scan
        multiplies ``(1 - alpha)`` directly, so weights differ at
        floating-point-path level — bounded by :data:`ATOL`.
        """
        from ..nerf.volume_render import CompositeResult
        if not NUMBA_AVAILABLE:
            return super().composite(sigmas, rgbs, t_values, deltas,
                                     ray_index, num_rays)
        sigmas = np.ascontiguousarray(np.asarray(sigmas, dtype=float))
        if len(sigmas) == 0:
            return CompositeResult(rgb=np.zeros((num_rays, 3)),
                                   depth=np.full(num_rays, np.inf),
                                   opacity=np.zeros(num_rays))
        deltas = np.ascontiguousarray(np.asarray(deltas, dtype=float))
        alphas = 1.0 - np.exp(-np.maximum(sigmas, 0.0) * deltas)
        rgb, depth_sum, opacity = _composite_scan(
            alphas, np.ascontiguousarray(np.asarray(rgbs, dtype=float)),
            np.ascontiguousarray(np.asarray(t_values, dtype=float)),
            np.ascontiguousarray(np.asarray(ray_index, dtype=np.int64)),
            int(num_rays))
        opacity = np.clip(opacity, 0.0, 1.0)
        safe = np.where(opacity > 1e-8, opacity, 1.0)
        depth = np.where(opacity > 1e-8, depth_sum / safe, np.inf)
        return CompositeResult(rgb=np.clip(rgb, 0.0, 1.0), depth=depth,
                               opacity=opacity)

    # -- dispatch ---------------------------------------------------------------

    def overrides(self) -> dict:
        """Install every njit kernel; nothing when numba is absent."""
        if not NUMBA_AVAILABLE:
            return {}
        return {
            "field.trilinear_gather": self.trilinear_gather,
            "field.accumulate_gather": self.accumulate_gather,
            "warp.gather": self.warp_gather,
            "warp.scatter": self.warp_scatter,
            "disocclusion.classify": self.classify,
            "volume.composite": self.composite,
        }
