"""Pluggable kernel backends for the measured serving hot paths.

Public surface:

* :data:`~repro.backend.base.KERNELS` / :class:`KernelBackend` — the
  hot-kernel contract.
* :func:`use_backend` / :func:`resolve_backend` / :func:`get_backend` —
  selection (``--backend`` flags land here).
* :func:`override` — the per-call dispatch hook the hot modules consult.

:mod:`repro.backend.parallel` (the multiprocessing pool) is imported
lazily by the engine, never here, to keep this package import-light and
cycle-free.
"""

from .base import KERNELS, KernelBackend
from .dispatch import active_overrides, override
from .numba_backend import ATOL as NUMBA_ATOL
from .numba_backend import NUMBA_AVAILABLE
from .registry import (
    DEFAULT_BACKEND,
    available_backends,
    backend_names,
    get_backend,
    kernel_defaults,
    register_backend,
    resolve_backend,
    use_backend,
)

__all__ = [
    "KERNELS",
    "KernelBackend",
    "DEFAULT_BACKEND",
    "NUMBA_ATOL",
    "NUMBA_AVAILABLE",
    "active_overrides",
    "available_backends",
    "backend_names",
    "get_backend",
    "kernel_defaults",
    "override",
    "register_backend",
    "resolve_backend",
    "use_backend",
]
