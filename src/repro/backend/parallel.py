"""Persistent multiprocessing pool fanning ray bundles across cores.

The ``parallel`` backend's engine path.  Baked field tables (voxel
vertex features, hash-level tables, tensor factors, the occupancy mask)
are exported **once** per renderer into ``multiprocessing.shared_memory``
blocks; workers attach read-only, so only ray bundles and per-bundle
:class:`~repro.nerf.renderer.RenderOutput` results ever cross the pool
boundary.  Because workers rebuild the renderer from the same baked
tables and run the same deterministic numpy kernels, per-bundle results
are bit-identical to the serial path (the ``parallel`` backend's
exact-parity contract).

Lifecycle: :func:`get_pool` returns the process-wide pool (created on
first use, resized on demand); :func:`shutdown_pool` — also registered
``atexit`` — stops the workers and unlinks every shared block.  A
``release`` broadcast drops worker-side renderer caches and scratch
arenas (the engine sends it at run exit).
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import weakref
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["WorkerPool", "get_pool", "shutdown_pool", "renderer_spec",
           "release_process_memory", "supports_parallel"]

_RESULT_TIMEOUT_S = 120.0


# ---------------------------------------------------------------------------
# shared-memory plumbing


# Whether attaches in *this* process must undo the resource tracker's
# registration.  Spawned workers get their own tracker which would
# otherwise unlink the parent's blocks at worker exit; forked workers
# share the parent's tracker, where the attach-register is a duplicate
# no-op and unregistering would strip the parent's own entry instead.
_UNREGISTER_ON_ATTACH = True


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    Before Python 3.13 every attach registers with the resource tracker,
    which then unlinks the block when *any* worker exits — stealing it
    from the exporter.  ``track=False`` (3.13+) or an explicit
    unregister (earlier, spawn workers only — see
    ``_UNREGISTER_ON_ATTACH``) keeps ownership with the exporter.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        shm = shared_memory.SharedMemory(name=name)
        if _UNREGISTER_ON_ATTACH:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return shm


def _export_array(array: np.ndarray) -> tuple[dict, shared_memory.SharedMemory]:
    """Copy an array into a fresh shared block; returns (ref, block)."""
    array = np.ascontiguousarray(array)
    shm = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    ref = {"shm": shm.name, "shape": array.shape, "dtype": array.dtype.str}
    return ref, shm


def _attach_array(ref: dict, blocks: list) -> np.ndarray:
    """Worker-side read-only view of an exported array."""
    shm = _attach(ref["shm"])
    blocks.append(shm)  # keep the mapping alive as long as the views
    view = np.ndarray(tuple(ref["shape"]), dtype=np.dtype(ref["dtype"]),
                      buffer=shm.buf)
    view.setflags(write=False)
    return view


# ---------------------------------------------------------------------------
# renderer <-> picklable spec

# renderer -> (token, spec); the spec is built once and its shared
# blocks are freed when the renderer is garbage-collected (finalizer)
# or at pool shutdown.
_SPEC_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_TOKEN_BLOCKS: dict = {}
_TOKENS = itertools.count(1)


def _field_spec(field) -> dict:
    """Picklable description of a baked field, tables in shared memory."""
    from ..nerf.fields.hash_grid import HashGridField
    from ..nerf.fields.tensor_factor import TensorFactorField
    from ..nerf.fields.voxel_grid import VoxelGridField

    lo, hi = field.bounds
    blocks = []

    def export(array):
        ref, shm = _export_array(array)
        blocks.append(shm)
        return ref

    decoder = field.decoder
    spec = {
        "bounds": (lo.tolist(), hi.tolist()),
        "bytes_per_channel": field.bytes_per_channel,
        "decoder": {
            "feature_dim": decoder.feature_dim,
            "max_density": decoder.max_density,
            "hidden_layers": len(decoder.mlp.weights) - 1,
        },
    }
    if isinstance(field, VoxelGridField):
        spec.update(kind="voxel", resolution=field.resolution,
                    vertex_features=export(field.vertex_features))
    elif isinstance(field, HashGridField):
        spec.update(kind="hash", levels=[
            {"resolution": level.resolution,
             "table_size": level.table_size,
             "table": export(level.table)}
            for level in field.levels])
    elif isinstance(field, TensorFactorField):
        spec.update(kind="tensorf", feature_dim=field.feature_dim, modes=[
            {"vectors": export(mode.vectors),
             "planes": export(mode.planes),
             "basis": export(mode.basis)}
            for mode in field.modes])
    else:
        raise TypeError(
            f"field {type(field).__name__} has no shared-memory export")
    return spec, blocks


def supports_parallel(renderer) -> bool:
    """Whether a renderer's bundles may be dispatched to the pool.

    Requires a deterministic sampler (jittered RNG streams must stay on
    the main process) and a field kind with a shared-memory export.
    """
    from ..nerf.fields.hash_grid import HashGridField
    from ..nerf.fields.tensor_factor import TensorFactorField
    from ..nerf.fields.voxel_grid import VoxelGridField
    return (not renderer.sampler.jitter) and isinstance(
        renderer.field, (VoxelGridField, HashGridField, TensorFactorField))


def renderer_spec(renderer) -> tuple[int, dict]:
    """(token, picklable spec) for a renderer; exported once per instance.

    The token keys worker-side renderer caches, so repeat dispatches of
    the same renderer ship only the token, not the tables.
    """
    cached = _SPEC_CACHE.get(renderer)
    if cached is not None:
        return cached
    field_spec, blocks = _field_spec(renderer.field)
    occupancy = renderer.sampler.occupancy
    occ_spec = None
    if occupancy is not None:
        ref, shm = _export_array(occupancy.occupancy)
        blocks.append(shm)
        olo, ohi = occupancy.bounds
        occ_spec = {"mask": ref, "bounds": (olo.tolist(), ohi.tolist())}
    token = next(_TOKENS)
    spec = {
        "field": field_spec,
        "occupancy": occ_spec,
        "num_samples": renderer.sampler.num_samples,
        "chunk_size": renderer.chunk_size,
        "opacity_threshold": renderer.opacity_threshold,
    }
    _TOKEN_BLOCKS[token] = blocks
    weakref.finalize(renderer, _release_token, token)
    _SPEC_CACHE[renderer] = (token, spec)
    return token, spec


def _release_token(token: int) -> None:
    """Close and unlink the shared blocks behind one exported renderer."""
    for shm in _TOKEN_BLOCKS.pop(token, ()):  # pragma: no branch
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass


def _build_renderer(spec: dict, blocks: list):
    """Worker-side renderer reconstruction from a picklable spec."""
    from ..nerf.fields.decode import SHDecoder
    from ..nerf.renderer import NeRFRenderer
    from ..nerf.sampling import OccupancyGrid, UniformSampler

    field_spec = spec["field"]
    dec = field_spec["decoder"]
    decoder = SHDecoder(feature_dim=dec["feature_dim"],
                        hidden_layers=dec["hidden_layers"],
                        max_density=dec["max_density"])
    bounds = tuple(np.asarray(b, dtype=float) for b in field_spec["bounds"])
    kind = field_spec["kind"]
    if kind == "voxel":
        from ..nerf.fields.voxel_grid import VoxelGridField
        field = VoxelGridField(
            _attach_array(field_spec["vertex_features"], blocks),
            field_spec["resolution"], bounds, decoder=decoder,
            bytes_per_channel=field_spec["bytes_per_channel"])
    elif kind == "hash":
        from ..nerf.fields.hash_grid import HashGridField, _Level
        levels = []
        for lv in field_spec["levels"]:
            level = _Level.__new__(_Level)
            level.resolution = int(lv["resolution"])
            level.table_size = int(lv["table_size"])
            level.table = _attach_array(lv["table"], blocks)
            level.num_entries = level.table.shape[0]
            level.dense = (level.resolution + 1) ** 3 <= level.table_size
            levels.append(level)
        field = HashGridField(levels, bounds, decoder=decoder,
                              bytes_per_channel=field_spec["bytes_per_channel"])
    else:  # tensorf
        from ..nerf.fields.tensor_factor import TensorFactorField, _Mode
        modes = [_Mode(_attach_array(m["vectors"], blocks),
                       _attach_array(m["planes"], blocks),
                       _attach_array(m["basis"], blocks))
                 for m in field_spec["modes"]]
        field = TensorFactorField(modes, bounds, decoder=decoder,
                                  feature_dim=field_spec["feature_dim"],
                                  bytes_per_channel=field_spec["bytes_per_channel"])

    occupancy = None
    if spec["occupancy"] is not None:
        occ = spec["occupancy"]
        occupancy = OccupancyGrid(
            _attach_array(occ["mask"], blocks),
            tuple(np.asarray(b, dtype=float) for b in occ["bounds"]))
    sampler = UniformSampler(num_samples=spec["num_samples"],
                             occupancy=occupancy, jitter=False)
    return NeRFRenderer(field, sampler, chunk_size=spec["chunk_size"],
                        opacity_threshold=spec["opacity_threshold"])


# ---------------------------------------------------------------------------
# worker loop


def _worker_main(inq, outq, forked: bool = False) -> None:
    """Pool worker: render bundles with cached spec-built renderers."""
    import traceback

    global _UNREGISTER_ON_ATTACH
    _UNREGISTER_ON_ATTACH = not forked
    renderers: dict = {}
    blocks: list = []
    while True:
        msg = inq.get()
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "release":
            renderers.clear()
            blocks.clear()
            release_process_memory()
            continue
        task_id, token, spec, origins, directions = msg[1:]
        try:
            renderer = renderers.get(token)
            if renderer is None:
                if spec is None:
                    raise RuntimeError(f"no spec cached for token {token}")
                renderer = renderers[token] = _build_renderer(spec, blocks)
            out = renderer.render_rays(origins, directions)
            outq.put(("ok", task_id,
                      (out.rgb, out.depth_t, out.opacity, out.stats)))
        except Exception:
            outq.put(("err", task_id, traceback.format_exc()))


def release_process_memory() -> None:
    """Drop scratch arenas and geometry memos (worker + engine hook)."""
    from ..geometry.camera import clear_dir_grid_cache
    from ..geometry.pointcloud import clear_lift_cache
    from ..nerf.sampling import clear_sampling_scratch
    clear_sampling_scratch()
    clear_dir_grid_cache()
    clear_lift_cache()


# ---------------------------------------------------------------------------
# the pool


class WorkerPool:
    """Persistent render workers fed round-robin over per-worker queues."""

    def __init__(self, num_workers: int):
        self.num_workers = int(num_workers)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix fallback
            ctx = multiprocessing.get_context("spawn")
        self._outq = ctx.Queue()
        self._inqs = []
        self._procs = []
        self._seen = [set() for _ in range(self.num_workers)]
        self._next_worker = 0
        self._task_ids = itertools.count(1)
        self._done: dict = {}  # finished tasks awaiting collection
        forked = ctx.get_start_method() == "fork"
        if forked:
            # Start the parent's resource tracker *before* forking so the
            # workers inherit (and share) it.  A worker that lazily spawns
            # its own tracker would "clean up" — unlink — the parent's
            # still-live shared blocks when the worker exits.
            resource_tracker.ensure_running()
        for _ in range(self.num_workers):
            inq = ctx.Queue()
            proc = ctx.Process(target=_worker_main,
                               args=(inq, self._outq, forked),
                               daemon=True)
            proc.start()
            self._inqs.append(inq)
            self._procs.append(proc)

    def submit_bundles(self, renderer, bundles: list) -> list:
        """Queue ``[(origins, directions), ...]`` round-robin; returns ids.

        Non-blocking: pair with :meth:`collect` to retrieve results.
        The renderer's spec ships with the first task each worker sees
        for it; afterwards only the token crosses the boundary.
        """
        from ..obs.runtime import metric_inc
        metric_inc("pool.dispatches")
        metric_inc("pool.bundles", len(bundles))
        task_ids = []
        token, spec = renderer_spec(renderer)
        for origins, directions in bundles:
            worker = self._next_worker
            self._next_worker = (self._next_worker + 1) % self.num_workers
            send_spec = spec if token not in self._seen[worker] else None
            self._seen[worker].add(token)
            task_id = next(self._task_ids)
            task_ids.append(task_id)
            self._inqs[worker].put(
                ("render", task_id, token, send_spec,
                 np.ascontiguousarray(origins),
                 np.ascontiguousarray(directions)))
        return task_ids

    def collect(self, task_ids: list) -> list:
        """Results for previously submitted tasks, in ``task_ids`` order.

        Each result is the ``(rgb, depth_t, opacity, stats)`` tuple of
        one bundle — bit-identical to the serial per-bundle
        ``render_rays`` output.  Raises on worker failure or timeout.
        """
        needed = set(task_ids) - self._done.keys()
        while needed:
            try:
                msg = self._outq.get(timeout=_RESULT_TIMEOUT_S)
            except Exception:
                raise RuntimeError(
                    "parallel backend: worker result timed out "
                    f"({len(needed)} bundles outstanding)")
            if msg[0] == "err":
                raise RuntimeError(
                    f"parallel backend: worker failed:\n{msg[2]}")
            self._done[msg[1]] = msg[2]
            needed.discard(msg[1])
        return [self._done.pop(t) for t in task_ids]

    def render_bundles(self, renderer, bundles: list) -> list:
        """Blocking convenience: submit then collect one bundle list."""
        return self.collect(self.submit_bundles(renderer, bundles))

    def release(self) -> None:
        """Broadcast a cache/scratch release to every worker."""
        for inq, seen in zip(self._inqs, self._seen):
            inq.put(("release",))
            seen.clear()

    def shutdown(self) -> None:
        """Stop the workers (joining briefly) and drop queue state."""
        for inq in self._inqs:
            try:
                inq.put(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._inqs = []
        self._procs = []


_POOL: WorkerPool | None = None


def get_pool(num_workers: int) -> WorkerPool:
    """The process-wide pool, (re)created to match ``num_workers``."""
    global _POOL
    if _POOL is not None and _POOL.num_workers != num_workers:
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _POOL = WorkerPool(num_workers)
    return _POOL


def shutdown_pool() -> None:
    """Stop the pool and unlink every exported shared block."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
    for token in list(_TOKEN_BLOCKS):
        _release_token(token)


atexit.register(shutdown_pool)
