"""The ``numpy`` (default) and ``parallel`` backend declarations.

Both run the canonical numpy kernels — :class:`NumpyBackend` is the
bit-parity reference implementation (today's measured hot paths), and
:class:`ParallelBackend` keeps those exact kernels but additionally
marks the run for multi-core engine dispatch: the
:class:`~repro.engine.MultiSessionEngine` fans different sessions' ray
bundles out to the persistent worker pool in
:mod:`repro.backend.parallel`.  Because each pool worker renders with
the same deterministic numpy kernels over bit-identical shared field
tables, ``parallel`` keeps the exact-parity contract.
"""

from __future__ import annotations

from .base import KernelBackend

__all__ = ["NumpyBackend", "ParallelBackend"]


class NumpyBackend(KernelBackend):
    """Canonical single-threaded numpy kernels (the parity reference)."""

    name = "numpy"
    description = "single-threaded numpy hot kernels (default; reference)"
    exact = True


class ParallelBackend(KernelBackend):
    """Numpy kernels + multiprocessing fan-out of session ray bundles.

    Kernel-wise this is :class:`NumpyBackend`; the difference lives in
    the engine, which dispatches each deterministic session bundle to a
    pool worker (``engine_workers`` of them) holding the baked field
    tables in shared memory.  Stochastic (jittered-sampler) sessions
    stay on the main process so their RNG stream is untouched.
    """

    name = "parallel"
    description = ("numpy kernels; sessions fan out to a persistent "
                   "multiprocessing pool (see --engine-workers)")
    exact = True
    # Workers used when the caller enables the backend without an
    # explicit --engine-workers count.
    default_workers = 2
