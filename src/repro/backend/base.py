"""Backend abstraction over the measured-hottest kernels.

A :class:`KernelBackend` names one implementation of the serving hot
kernels (the ones ``cli bench`` measures): field query
(``trilinear_gather`` + ``accumulate_gather``), warp gather/scatter,
disocclusion classification, and volume compositing.  The base class
delegates every kernel to the canonical numpy implementation, so a
subclass overrides only the kernels it accelerates and
:meth:`overrides` reports exactly that set to the dispatch table.

Parity contract (enforced by ``tests/backend/``):

* ``exact=True`` backends (``numpy``, ``parallel``) are **bit-identical**
  to the reference kernels in :mod:`repro.perf.reference` — goldens and
  engine results never change under them.
* ``exact=False`` backends (``numba``) are bounded-error: each kernel
  documents its tolerance, and such a backend is never the default, so
  goldens stay byte-stable.
"""

from __future__ import annotations

__all__ = ["KERNELS", "KernelBackend"]

# The backend-pluggable kernel surface, in bench-registry naming.
KERNELS = (
    "field.trilinear_gather",
    "field.accumulate_gather",
    "warp.gather",
    "warp.scatter",
    "disocclusion.classify",
    "volume.composite",
)


class KernelBackend:
    """One named implementation of the hot-kernel surface.

    Attributes
    ----------
    name:
        Registry key (``--backend`` value).
    exact:
        True when the backend's kernels are bit-identical to the numpy
        reference (the goldens contract); False for bounded-error
        backends.
    available:
        False when the backend's runtime dependency is missing; the
        registry then resolves it to its fallback with a note instead of
        failing the run.
    fallback:
        Name of the backend used when this one is unavailable.
    """

    name = "base"
    description = "canonical numpy kernels"
    exact = True
    available = True
    fallback = "numpy"

    # -- kernel surface (canonical numpy delegates) ----------------------------

    def trilinear_gather(self, coords01, resolution, assume_clipped=False):
        """Corner-major trilinear setup (see ``repro.nerf.fields.interp``)."""
        from ..nerf.fields.interp import trilinear_gather_numpy
        return trilinear_gather_numpy(coords01, resolution, assume_clipped)

    def accumulate_gather(self, table, base_ids, corner_offsets,
                          weight_factors):
        """Weighted corner-feature accumulation (field query core)."""
        from ..nerf.fields.interp import accumulate_gather_numpy
        return accumulate_gather_numpy(table, base_ids, corner_offsets,
                                       weight_factors)

    def warp_gather(self, depth, intrinsics):
        """Per-pixel depth lift into camera-space points (SPARW step 1)."""
        from ..geometry.pointcloud import depth_to_points_numpy
        return depth_to_points_numpy(depth, intrinsics)

    def warp_scatter(self, flat_ids, z, src, colors, image, depth,
                     source_index):
        """Z-buffer resolve of projected points (SPARW step 3 core)."""
        from ..geometry.projection import scatter_resolve_numpy
        return scatter_resolve_numpy(flat_ids, z, src, colors, image,
                                     depth, source_index)

    def classify(self, covered, hole, angle, threshold):
        """Warped/disoccluded mask partition of a naive warp."""
        from ..core.sparw.disocclusion import classify_masks_numpy
        return classify_masks_numpy(covered, hole, angle, threshold)

    def composite(self, sigmas, rgbs, t_values, deltas, ray_index,
                  num_rays):
        """Segmented alpha compositing of flattened ray samples."""
        from ..nerf.volume_render import composite_numpy
        return composite_numpy(sigmas, rgbs, t_values, deltas, ray_index,
                               num_rays)

    # -- dispatch ---------------------------------------------------------------

    def overrides(self) -> dict:
        """Kernel-name -> callable table for the dispatch layer.

        The base (and any backend whose kernels *are* the built-ins)
        returns an empty table: the hot paths then run their canonical
        numpy code with zero indirection.
        """
        return {}

    def kernel(self, name: str):
        """The method implementing a :data:`KERNELS` entry, by name."""
        attr = {
            "field.trilinear_gather": self.trilinear_gather,
            "field.accumulate_gather": self.accumulate_gather,
            "warp.gather": self.warp_gather,
            "warp.scatter": self.warp_scatter,
            "disocclusion.classify": self.classify,
            "volume.composite": self.composite,
        }.get(name)
        if attr is None:
            raise KeyError(f"unknown kernel {name!r}; one of {KERNELS}")
        return attr

    def describe(self) -> dict:
        """One registry-listing row (used by ``cli bench`` and docs)."""
        return {
            "backend": self.name,
            "exact": self.exact,
            "available": self.available,
            "overrides": sorted(self.overrides()),
            "description": self.description,
        }
