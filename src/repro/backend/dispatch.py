"""The kernel-override table the hot paths consult on every call.

This module is deliberately import-free so the measured hot kernels
(:mod:`repro.nerf.fields.interp`, :mod:`repro.nerf.volume_render`, the
SPARW warp geometry) can consult it without creating an import cycle
through the backend package.  The table maps kernel names (see
:data:`repro.backend.base.KERNELS`) to replacement callables; an empty
table — the default, and what the ``numpy`` and ``parallel`` backends
install — means every kernel runs its built-in numpy implementation.

The cost of an inactive backend is one dict lookup per kernel call.
Like the rest of the simulator, the table is process-global and
single-threaded by design; :func:`repro.backend.registry.use_backend`
is the only sanctioned writer.
"""

from __future__ import annotations

__all__ = ["override", "active_overrides", "install"]

# kernel name -> callable; empty when the numpy kernels are active.
_OVERRIDES: dict = {}


def override(kernel: str):
    """The active replacement for ``kernel``, or ``None`` for built-in."""
    return _OVERRIDES.get(kernel)


def active_overrides() -> dict:
    """The currently installed override table (read-only by convention)."""
    return _OVERRIDES


def install(overrides: dict) -> dict:
    """Swap the override table; returns the previous one (for restore)."""
    global _OVERRIDES
    previous = _OVERRIDES
    _OVERRIDES = dict(overrides)
    return previous
