"""Backend registry: lookup, availability fallback, and activation.

The registry is the single place that knows which
:class:`~repro.backend.base.KernelBackend` implementations exist.
``--backend`` values resolve here; :func:`use_backend` is the one
sanctioned writer of the dispatch override table (install on enter,
restore on exit), so nesting and exceptions are safe.
"""

from __future__ import annotations

from contextlib import contextmanager

from . import dispatch
from .base import KERNELS, KernelBackend
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend, ParallelBackend

__all__ = [
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "use_backend",
]

# The backend active when no --backend flag is given; also the parity
# reference every other backend is tested against.
DEFAULT_BACKEND = "numpy"

_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend instance to the registry (last write wins)."""
    _REGISTRY[backend.name] = backend
    return backend


register_backend(NumpyBackend())
register_backend(NumbaBackend())
register_backend(ParallelBackend())


def backend_names() -> tuple:
    """All registered backend names (including unavailable ones)."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> tuple:
    """Names of backends whose runtime dependencies are present."""
    return tuple(name for name in backend_names()
                 if _REGISTRY[name].available)


def get_backend(name: str) -> KernelBackend:
    """The registered backend called ``name``.

    Raises ``KeyError`` naming the valid choices — the same UX as the
    unknown-figure / unknown-kernel CLI errors.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def resolve_backend(name: str | None) -> KernelBackend:
    """``get_backend`` plus graceful degradation for unavailable ones.

    ``None`` resolves to :data:`DEFAULT_BACKEND`.  An unavailable
    backend (e.g. ``numba`` without the [perf] extra installed) resolves
    to its declared fallback so runs degrade instead of failing.
    """
    backend = get_backend(DEFAULT_BACKEND if name is None else name)
    seen = {backend.name}
    while not backend.available:
        fallback = backend.fallback
        if fallback in seen:  # defensive: cyclic fallback chain
            raise RuntimeError(
                f"no available fallback for backend {name!r}")
        seen.add(fallback)
        backend = get_backend(fallback)
    return backend


@contextmanager
def use_backend(name: str | None):
    """Activate a backend's kernel overrides for the ``with`` body.

    Yields the resolved :class:`KernelBackend` (which may be the
    fallback when the requested backend is unavailable).  The previous
    override table is restored on exit, so activations nest.
    """
    backend = resolve_backend(name)
    previous = dispatch.install(backend.overrides())
    try:
        yield backend
    finally:
        dispatch.install(previous)


def kernel_defaults() -> dict:
    """Canonical numpy callable for every :data:`KERNELS` entry.

    Used by parity tests to call the reference implementation directly
    regardless of the installed override table.
    """
    base = _REGISTRY[DEFAULT_BACKEND]
    return {name: base.kernel(name) for name in KERNELS}
