"""Depth-map <-> point-cloud conversion (step 1 of SPARW).

Implements Eq. 1 of the paper: lifting every pixel of a reference frame into
a 3D point cloud in the reference camera's coordinate system, using the
per-pixel depth and the camera intrinsics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FramePointCloud", "depth_to_points", "transform_points"]


@dataclass
class FramePointCloud:
    """Per-pixel 3D points with attached colors and validity mask.

    ``points`` are in *camera* coordinates of the frame that produced them
    unless transformed; ``valid`` marks pixels with finite depth (void/sky
    pixels have infinite depth and carry no point).
    """

    points: np.ndarray  # (N, 3)
    colors: np.ndarray  # (N, 3)
    valid: np.ndarray  # (N,) bool

    def __len__(self) -> int:
        return self.points.shape[0]

    def transformed(self, transform: np.ndarray) -> "FramePointCloud":
        """Apply a 4x4 rigid transform to the points (Eq. 2)."""
        return FramePointCloud(
            points=transform_points(self.points, transform),
            colors=self.colors,
            valid=self.valid,
        )


def depth_to_points(depth: np.ndarray, intrinsics) -> np.ndarray:
    """Back-project a depth map into camera-space points (Eq. 1).

    ``depth`` is (H, W) metric z-depth.  The output is (H*W, 3), row-major.
    Pixels with non-finite depth produce non-finite points; callers should
    mask them via :func:`finite_mask` or :class:`FramePointCloud`.
    """
    depth = np.asarray(depth, dtype=float)
    height, width = depth.shape
    us = np.arange(width, dtype=float) + 0.5
    vs = np.arange(height, dtype=float) + 0.5
    u, v = np.meshgrid(us, vs)
    x = (u - intrinsics.cx) / intrinsics.fx * depth
    y = (v - intrinsics.cy) / intrinsics.fy * depth
    points = np.stack([x, y, depth], axis=-1)
    return points.reshape(-1, 3)


def transform_points(points: np.ndarray, transform: np.ndarray) -> np.ndarray:
    """Apply a 4x4 rigid transform to (N, 3) points."""
    points = np.asarray(points, dtype=float)
    return points @ transform[:3, :3].T + transform[:3, 3]


def frame_to_pointcloud(image: np.ndarray, depth: np.ndarray, intrinsics) -> FramePointCloud:
    """Lift a rendered frame (colors + depth) into a camera-space point cloud."""
    image = np.asarray(image, dtype=float)
    depth = np.asarray(depth, dtype=float)
    if image.shape[:2] != depth.shape:
        raise ValueError("image and depth resolutions differ")
    points = depth_to_points(depth, intrinsics)
    colors = image.reshape(-1, 3)
    valid = np.isfinite(depth).reshape(-1) & (depth.reshape(-1) > 0.0)
    return FramePointCloud(points=points, colors=colors, valid=valid)


__all__.append("frame_to_pointcloud")
