"""Depth-map <-> point-cloud conversion (step 1 of SPARW).

Implements Eq. 1 of the paper: lifting every pixel of a reference frame into
a 3D point cloud in the reference camera's coordinate system, using the
per-pixel depth and the camera intrinsics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.dispatch import override

__all__ = ["FramePointCloud", "depth_to_points", "depth_to_points_numpy",
           "transform_points", "lift_grids", "clear_lift_cache"]


@dataclass
class FramePointCloud:
    """Per-pixel 3D points with attached colors and validity mask.

    ``points`` are in *camera* coordinates of the frame that produced them
    unless transformed; ``valid`` marks pixels with finite depth (void/sky
    pixels have infinite depth and carry no point).
    """

    points: np.ndarray  # (N, 3)
    colors: np.ndarray  # (N, 3)
    valid: np.ndarray  # (N,) bool

    def __len__(self) -> int:
        return self.points.shape[0]

    def transformed(self, transform: np.ndarray) -> "FramePointCloud":
        """Apply a 4x4 rigid transform to the points (Eq. 2)."""
        return FramePointCloud(
            points=transform_points(self.points, transform),
            colors=self.colors,
            valid=self.valid,
        )


# Per-(intrinsics, shape) normalised pixel lattices for depth lifting.
# Keyed on the resolution too so mismatched depth maps never reuse a
# lattice.  This is the warp path's per-frame setup cost (a measured hot
# path; see repro.perf).  Bounded FIFO so a long-lived server cycling
# many resolutions cannot grow it without limit.
_LIFT_CACHE: dict = {}
_LIFT_CACHE_MAX = 32


def _lift_grids(intrinsics, height: int, width: int
                ) -> tuple[np.ndarray, np.ndarray]:
    """Cached ((H, W), (H, W)) lattices of (u - cx) / fx and (v - cy) / fy."""
    key = (intrinsics, height, width)
    grids = _LIFT_CACHE.get(key)
    if grids is None:
        us = np.arange(width, dtype=float) + 0.5
        vs = np.arange(height, dtype=float) + 0.5
        u, v = np.meshgrid(us, vs)
        xg = (u - intrinsics.cx) / intrinsics.fx
        yg = (v - intrinsics.cy) / intrinsics.fy
        xg.setflags(write=False)
        yg.setflags(write=False)
        while len(_LIFT_CACHE) >= _LIFT_CACHE_MAX:
            _LIFT_CACHE.pop(next(iter(_LIFT_CACHE)))
        grids = _LIFT_CACHE[key] = (xg, yg)
    return grids


def lift_grids(intrinsics, height: int, width: int
               ) -> tuple[np.ndarray, np.ndarray]:
    """Public alias of the memoised lift lattices for alternate backends."""
    return _lift_grids(intrinsics, height, width)


def clear_lift_cache() -> None:
    """Release the memoised lift lattices (engine run-exit housekeeping)."""
    _LIFT_CACHE.clear()


def depth_to_points(depth: np.ndarray, intrinsics) -> np.ndarray:
    """Backend-dispatched :func:`depth_to_points_numpy` (see there)."""
    fn = override("warp.gather")
    if fn is not None:
        return fn(depth, intrinsics)
    return depth_to_points_numpy(depth, intrinsics)


def depth_to_points_numpy(depth: np.ndarray, intrinsics) -> np.ndarray:
    """Back-project a depth map into camera-space points (Eq. 1).

    ``depth`` is (H, W) metric z-depth.  The output is (H*W, 3), row-major.
    Pixels with non-finite depth produce non-finite points; callers should
    mask them via :class:`FramePointCloud`.  The normalised pixel lattice
    is memoised per intrinsics (bit-identical to recomputing it: the
    lattice is a pure function of intrinsics and resolution).
    """
    depth = np.asarray(depth, dtype=float)
    height, width = depth.shape
    xg, yg = _lift_grids(intrinsics, height, width)
    points = np.stack([xg * depth, yg * depth, depth], axis=-1)
    return points.reshape(-1, 3)


def transform_points(points: np.ndarray, transform: np.ndarray) -> np.ndarray:
    """Apply a 4x4 rigid transform to (N, 3) points."""
    points = np.asarray(points, dtype=float)
    return points @ transform[:3, :3].T + transform[:3, 3]


def frame_to_pointcloud(image: np.ndarray, depth: np.ndarray, intrinsics) -> FramePointCloud:
    """Lift a rendered frame (colors + depth) into a camera-space point cloud."""
    image = np.asarray(image, dtype=float)
    depth = np.asarray(depth, dtype=float)
    if image.shape[:2] != depth.shape:
        raise ValueError("image and depth resolutions differ")
    points = depth_to_points(depth, intrinsics)
    colors = image.reshape(-1, 3)
    valid = np.isfinite(depth).reshape(-1) & (depth.reshape(-1) > 0.0)
    return FramePointCloud(points=points, colors=colors, valid=valid)


__all__.append("frame_to_pointcloud")
