"""Ray bundles and ray-box intersection.

NeRF rendering operates on flat bundles of rays; this module provides the
container plus the axis-aligned bounding-box (AABB) clipping used to restrict
ray sampling to the scene volume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RayBundle", "intersect_aabb"]


@dataclass
class RayBundle:
    """A flat bundle of rays (origins/directions shaped (N, 3)).

    ``pixel_ids`` optionally records which image pixel each ray came from so
    sparse renders can scatter results back into a frame.
    """

    origins: np.ndarray
    directions: np.ndarray
    pixel_ids: np.ndarray | None = None

    def __post_init__(self):
        self.origins = np.atleast_2d(np.asarray(self.origins, dtype=float))
        self.directions = np.atleast_2d(np.asarray(self.directions, dtype=float))
        if self.origins.shape != self.directions.shape:
            raise ValueError("origins and directions must have the same shape")
        if self.origins.shape[-1] != 3:
            raise ValueError("rays must be 3-dimensional")
        if self.pixel_ids is not None:
            self.pixel_ids = np.asarray(self.pixel_ids, dtype=np.int64)
            if self.pixel_ids.shape[0] != self.origins.shape[0]:
                raise ValueError("pixel_ids length must match ray count")

    def __len__(self) -> int:
        return self.origins.shape[0]

    @classmethod
    def from_camera(cls, camera) -> "RayBundle":
        """All pixel rays of a camera, flattened row-major."""
        origins, directions = camera.generate_rays()
        n = camera.width * camera.height
        return cls(
            origins=origins.reshape(n, 3),
            directions=directions.reshape(n, 3),
            pixel_ids=np.arange(n),
        )

    @classmethod
    def from_camera_pixels(cls, camera, pixel_ids: np.ndarray) -> "RayBundle":
        """Rays for a subset of pixels given by flat row-major ids."""
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        v, u = np.divmod(pixel_ids, camera.width)
        origins, directions = camera.rays_for_pixels(u + 0.5, v + 0.5)
        return cls(origins=origins, directions=directions, pixel_ids=pixel_ids)

    def select(self, mask_or_index: np.ndarray) -> "RayBundle":
        """Sub-bundle selected by a boolean mask or index array."""
        ids = None if self.pixel_ids is None else self.pixel_ids[mask_or_index]
        return RayBundle(
            origins=self.origins[mask_or_index],
            directions=self.directions[mask_or_index],
            pixel_ids=ids,
        )


def intersect_aabb(
    origins: np.ndarray,
    directions: np.ndarray,
    box_min: np.ndarray,
    box_max: np.ndarray,
    near: float = 0.0,
    far: float = np.inf,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Slab-method ray/AABB intersection.

    Returns ``(t_near, t_far, hit)`` per ray; ``hit`` is False when the ray
    misses the box within ``[near, far]``.  Zero direction components are
    handled by the usual +/-inf slab arithmetic.
    """
    origins = np.asarray(origins, dtype=float)
    directions = np.asarray(directions, dtype=float)
    box_min = np.asarray(box_min, dtype=float)
    box_max = np.asarray(box_max, dtype=float)

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        inv = 1.0 / directions
        t0 = (box_min - origins) * inv
        t1 = (box_max - origins) * inv
    t_small = np.minimum(t0, t1)
    t_big = np.maximum(t0, t1)
    # A zero direction component outside the slab yields NaN; treat entry as
    # -inf/exit as +inf only when the origin is inside that slab.
    inside = (origins >= box_min) & (origins <= box_max)
    t_small = np.where(np.isnan(t_small), np.where(inside, -np.inf, np.inf), t_small)
    t_big = np.where(np.isnan(t_big), np.where(inside, np.inf, -np.inf), t_big)

    t_near = np.maximum(t_small.max(axis=-1), near)
    t_far = np.minimum(t_big.min(axis=-1), far)
    hit = t_near < t_far
    return t_near, t_far, hit
