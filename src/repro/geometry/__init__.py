"""Geometry substrate: cameras, poses, rays, point clouds, projection."""

from .camera import Intrinsics, PinholeCamera
from .pointcloud import FramePointCloud, depth_to_points, frame_to_pointcloud, transform_points
from .projection import SplatResult, splat_points
from .rays import RayBundle, intersect_aabb
from .transforms import (
    compose,
    extrapolate_pose,
    interpolate_pose,
    invert_pose,
    is_rotation_matrix,
    look_at,
    make_pose,
    pose_rotation,
    pose_translation,
    relative_pose,
    rotation_angle_deg,
    rotation_from_axis_angle,
    rotation_x,
    rotation_y,
    rotation_z,
    translation_distance,
)

__all__ = [
    "Intrinsics",
    "PinholeCamera",
    "FramePointCloud",
    "depth_to_points",
    "frame_to_pointcloud",
    "transform_points",
    "SplatResult",
    "splat_points",
    "RayBundle",
    "intersect_aabb",
    "compose",
    "extrapolate_pose",
    "interpolate_pose",
    "invert_pose",
    "is_rotation_matrix",
    "look_at",
    "make_pose",
    "pose_rotation",
    "pose_translation",
    "relative_pose",
    "rotation_angle_deg",
    "rotation_from_axis_angle",
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "translation_distance",
]
