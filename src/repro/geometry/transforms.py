"""Rigid-body (SE(3)) transforms and pose utilities.

Conventions
-----------
* Poses are 4x4 homogeneous matrices mapping *camera* coordinates to *world*
  coordinates (camera-to-world, often written ``c2w``).
* The camera frame follows the computer-vision convention: ``+x`` right,
  ``+y`` down, ``+z`` forward (into the scene).
* Rotations are proper (determinant +1) orthonormal matrices.

These helpers back both the ground-truth ray tracer and the SPARW warping
math (Eq. 2 of the paper, the reference-to-target transform).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "rotation_from_axis_angle",
    "make_pose",
    "invert_pose",
    "compose",
    "relative_pose",
    "look_at",
    "pose_translation",
    "pose_rotation",
    "rotation_angle_deg",
    "translation_distance",
    "extrapolate_pose",
    "interpolate_pose",
    "is_rotation_matrix",
]


def rotation_x(angle_rad: float) -> np.ndarray:
    """Rotation about the x axis by ``angle_rad`` radians."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])


def rotation_y(angle_rad: float) -> np.ndarray:
    """Rotation about the y axis by ``angle_rad`` radians."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rotation_z(angle_rad: float) -> np.ndarray:
    """Rotation about the z axis by ``angle_rad`` radians."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def rotation_from_axis_angle(axis: np.ndarray, angle_rad: float) -> np.ndarray:
    """Rodrigues' formula: rotation of ``angle_rad`` about unit-ish ``axis``."""
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm == 0.0:
        raise ValueError("rotation axis must be non-zero")
    x, y, z = axis / norm
    k = np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])
    return np.eye(3) + np.sin(angle_rad) * k + (1.0 - np.cos(angle_rad)) * (k @ k)


def make_pose(rotation: np.ndarray, translation: np.ndarray) -> np.ndarray:
    """Assemble a 4x4 pose from a 3x3 rotation and a 3-vector translation."""
    pose = np.eye(4)
    pose[:3, :3] = rotation
    pose[:3, 3] = np.asarray(translation, dtype=float).reshape(3)
    return pose


def invert_pose(pose: np.ndarray) -> np.ndarray:
    """Invert an SE(3) pose without a general 4x4 inverse (exact + cheap)."""
    rotation = pose[:3, :3]
    translation = pose[:3, 3]
    inv = np.eye(4)
    inv[:3, :3] = rotation.T
    inv[:3, 3] = -rotation.T @ translation
    return inv


def compose(*poses: np.ndarray) -> np.ndarray:
    """Compose poses left-to-right: ``compose(A, B) == A @ B``."""
    out = np.eye(4)
    for pose in poses:
        out = out @ pose
    return out


def relative_pose(src_c2w: np.ndarray, dst_c2w: np.ndarray) -> np.ndarray:
    """Transform taking *src-camera* coordinates to *dst-camera* coordinates.

    This is ``T_ref->tgt`` in Eq. 2 of the paper: a point expressed in the
    reference camera frame, multiplied by this matrix, lands in the target
    camera frame.
    """
    return invert_pose(dst_c2w) @ src_c2w


def look_at(eye: np.ndarray, target: np.ndarray, up=(0.0, 1.0, 0.0)) -> np.ndarray:
    """Camera-to-world pose for a camera at ``eye`` looking at ``target``.

    Uses the CV convention (+z forward, +y down in camera frame), so the
    world-space ``up`` maps to camera ``-y``.
    """
    eye = np.asarray(eye, dtype=float)
    target = np.asarray(target, dtype=float)
    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm == 0.0:
        raise ValueError("eye and target coincide")
    forward = forward / norm
    up = np.asarray(up, dtype=float)
    right = np.cross(forward, up)
    right_norm = np.linalg.norm(right)
    if right_norm < 1e-9:
        # Degenerate up: pick any perpendicular axis.
        up = np.array([1.0, 0.0, 0.0]) if abs(forward[1]) > 0.9 else np.array([0.0, 1.0, 0.0])
        right = np.cross(forward, up)
        right_norm = np.linalg.norm(right)
    right = right / right_norm
    down = np.cross(forward, right)
    rotation = np.stack([right, down, forward], axis=1)
    return make_pose(rotation, eye)


def pose_translation(pose: np.ndarray) -> np.ndarray:
    """Translation (camera centre in world coordinates) of a c2w pose."""
    return pose[:3, 3].copy()


def pose_rotation(pose: np.ndarray) -> np.ndarray:
    """Rotation block of a pose."""
    return pose[:3, :3].copy()


def rotation_angle_deg(rot_a: np.ndarray, rot_b: np.ndarray) -> float:
    """Geodesic angle in degrees between two rotation matrices."""
    rel = rot_a.T @ rot_b
    cos = (np.trace(rel) - 1.0) / 2.0
    cos = np.clip(cos, -1.0, 1.0)
    return float(np.degrees(np.arccos(cos)))


def translation_distance(pose_a: np.ndarray, pose_b: np.ndarray) -> float:
    """Euclidean distance between the camera centres of two poses."""
    return float(np.linalg.norm(pose_translation(pose_a) - pose_translation(pose_b)))


def _orthonormalize(rotation: np.ndarray) -> np.ndarray:
    """Project a near-rotation matrix back onto SO(3) via SVD."""
    u, _, vt = np.linalg.svd(rotation)
    rot = u @ vt
    if np.linalg.det(rot) < 0.0:
        u[:, -1] = -u[:, -1]
        rot = u @ vt
    return rot


def extrapolate_pose(prev: np.ndarray, curr: np.ndarray, steps: float) -> np.ndarray:
    """Constant-velocity pose extrapolation (Eq. 5-6 of the paper).

    ``prev`` and ``curr`` are consecutive c2w poses one frame apart.  The
    returned pose continues the motion ``steps`` frame-intervals past
    ``curr``; fractional ``steps`` are allowed.  Translation extrapolates
    linearly; rotation extrapolates by repeating the relative rotation
    (first-order, adequate for the small per-frame deltas of a real camera).
    """
    delta_t = pose_translation(curr) - pose_translation(prev)
    rel_rot = pose_rotation(curr) @ pose_rotation(prev).T
    angle = np.arccos(np.clip((np.trace(rel_rot) - 1.0) / 2.0, -1.0, 1.0))
    if angle < 1e-9:
        rot = pose_rotation(curr)
    else:
        axis = np.array([
            rel_rot[2, 1] - rel_rot[1, 2],
            rel_rot[0, 2] - rel_rot[2, 0],
            rel_rot[1, 0] - rel_rot[0, 1],
        ]) / (2.0 * np.sin(angle))
        rot = rotation_from_axis_angle(axis, angle * steps) @ pose_rotation(curr)
        rot = _orthonormalize(rot)
    return make_pose(rot, pose_translation(curr) + delta_t * steps)


def interpolate_pose(pose_a: np.ndarray, pose_b: np.ndarray, alpha: float) -> np.ndarray:
    """Interpolate between two poses (``alpha=0`` -> a, ``alpha=1`` -> b)."""
    trans = (1.0 - alpha) * pose_translation(pose_a) + alpha * pose_translation(pose_b)
    rel = pose_rotation(pose_a).T @ pose_rotation(pose_b)
    angle = np.arccos(np.clip((np.trace(rel) - 1.0) / 2.0, -1.0, 1.0))
    if angle < 1e-9:
        rot = pose_rotation(pose_a)
    else:
        axis = np.array([
            rel[2, 1] - rel[1, 2],
            rel[0, 2] - rel[2, 0],
            rel[1, 0] - rel[0, 1],
        ]) / (2.0 * np.sin(angle))
        rot = pose_rotation(pose_a) @ rotation_from_axis_angle(axis, angle * alpha)
    return make_pose(_orthonormalize(rot), trans)


def is_rotation_matrix(rotation: np.ndarray, tol: float = 1e-6) -> bool:
    """True when ``rotation`` is orthonormal with determinant +1."""
    if rotation.shape != (3, 3):
        return False
    identity_err = np.abs(rotation @ rotation.T - np.eye(3)).max()
    return bool(identity_err < tol and abs(np.linalg.det(rotation) - 1.0) < tol)
