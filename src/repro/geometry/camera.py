"""Pinhole camera model.

A :class:`PinholeCamera` bundles intrinsics (focal length, principal point,
resolution) with an extrinsic camera-to-world pose.  It produces the per-pixel
ray bundles that drive both the ground-truth ray tracer and NeRF rendering,
and performs the point projections used by SPARW warping.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .transforms import invert_pose

__all__ = ["Intrinsics", "PinholeCamera", "clear_dir_grid_cache"]

# Per-intrinsics camera-space direction lattice for full-frame ray
# generation.  Intrinsics are frozen/hashable and a process normally uses
# a handful (one per quality tier per image size); the memo saves a
# meshgrid + stack per reference frame — a measured hot path (see
# repro.perf).  Poses never enter the cache: the lattice is a pure
# function of the intrinsics.  Bounded FIFO so a long-lived server
# cycling many resolutions cannot grow it without limit.
_DIR_GRID_CACHE: dict = {}
_DIR_GRID_CACHE_MAX = 32


def _camera_dir_grid(intrinsics: "Intrinsics") -> np.ndarray:
    """Cached (H, W, 3) camera-space (unnormalised) pixel-centre directions."""
    grid = _DIR_GRID_CACHE.get(intrinsics)
    if grid is None:
        us = np.arange(intrinsics.width, dtype=float) + 0.5
        vs = np.arange(intrinsics.height, dtype=float) + 0.5
        u, v = np.meshgrid(us, vs)
        x = (u - intrinsics.cx) / intrinsics.fx
        y = (v - intrinsics.cy) / intrinsics.fy
        grid = np.stack([x, y, np.ones_like(x)], axis=-1)
        grid.setflags(write=False)
        while len(_DIR_GRID_CACHE) >= _DIR_GRID_CACHE_MAX:
            _DIR_GRID_CACHE.pop(next(iter(_DIR_GRID_CACHE)))
        _DIR_GRID_CACHE[intrinsics] = grid
    return grid


def clear_dir_grid_cache() -> None:
    """Release the memoised direction lattices (engine run-exit housekeeping)."""
    _DIR_GRID_CACHE.clear()


@dataclass(frozen=True)
class Intrinsics:
    """Pinhole intrinsics: focal lengths, principal point, resolution."""

    width: int
    height: int
    fx: float
    fy: float
    cx: float
    cy: float

    @classmethod
    def from_fov(cls, width: int, height: int, fov_x_deg: float) -> "Intrinsics":
        """Build intrinsics from a horizontal field of view."""
        fx = width / (2.0 * np.tan(np.radians(fov_x_deg) / 2.0))
        return cls(width=width, height=height, fx=fx, fy=fx,
                   cx=width / 2.0, cy=height / 2.0)

    def matrix(self) -> np.ndarray:
        """3x3 intrinsic matrix K."""
        return np.array([
            [self.fx, 0.0, self.cx],
            [0.0, self.fy, self.cy],
            [0.0, 0.0, 1.0],
        ])

    def scaled(self, factor: float) -> "Intrinsics":
        """Intrinsics for an image rescaled by ``factor`` (e.g. 0.5 for DS-2)."""
        return Intrinsics(
            width=max(1, int(round(self.width * factor))),
            height=max(1, int(round(self.height * factor))),
            fx=self.fx * factor,
            fy=self.fy * factor,
            cx=self.cx * factor,
            cy=self.cy * factor,
        )

    @property
    def num_pixels(self) -> int:
        return self.width * self.height


@dataclass(frozen=True)
class PinholeCamera:
    """A pinhole camera with a camera-to-world pose (CV convention)."""

    intrinsics: Intrinsics
    c2w: np.ndarray = field(default_factory=lambda: np.eye(4))

    def __post_init__(self):
        pose = np.asarray(self.c2w, dtype=float)
        if pose.shape != (4, 4):
            raise ValueError(f"c2w must be 4x4, got {pose.shape}")
        object.__setattr__(self, "c2w", pose)

    # -- derived views ----------------------------------------------------

    @property
    def w2c(self) -> np.ndarray:
        """World-to-camera pose."""
        return invert_pose(self.c2w)

    @property
    def position(self) -> np.ndarray:
        """Camera centre in world coordinates."""
        return self.c2w[:3, 3].copy()

    @property
    def width(self) -> int:
        return self.intrinsics.width

    @property
    def height(self) -> int:
        return self.intrinsics.height

    def with_pose(self, c2w: np.ndarray) -> "PinholeCamera":
        """A copy of this camera at a new pose."""
        return replace(self, c2w=np.asarray(c2w, dtype=float))

    def scaled(self, factor: float) -> "PinholeCamera":
        """A copy with intrinsics rescaled by ``factor`` (same pose)."""
        return replace(self, intrinsics=self.intrinsics.scaled(factor))

    # -- rays --------------------------------------------------------------

    def pixel_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Pixel-centre coordinates ``(u, v)`` as (H, W) arrays."""
        us = np.arange(self.width, dtype=float) + 0.5
        vs = np.arange(self.height, dtype=float) + 0.5
        return np.meshgrid(us, vs)

    def _world_rays(self, dirs_cam: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Rotate camera-space directions into world space and normalise."""
        rot = self.c2w[:3, :3]
        dirs_world = dirs_cam @ rot.T
        dirs_world = dirs_world / np.linalg.norm(dirs_world, axis=-1, keepdims=True)
        origins = np.broadcast_to(self.position, dirs_world.shape).copy()
        return origins, dirs_world

    def rays_for_pixels(self, u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """World-space ray origins/directions for pixel coordinates.

        Directions are normalised.  ``u``/``v`` may have any matching shape;
        outputs gain a trailing dimension of 3.
        """
        intr = self.intrinsics
        x = (np.asarray(u, dtype=float) - intr.cx) / intr.fx
        y = (np.asarray(v, dtype=float) - intr.cy) / intr.fy
        dirs_cam = np.stack([x, y, np.ones_like(x)], axis=-1)
        return self._world_rays(dirs_cam)

    def generate_rays(self) -> tuple[np.ndarray, np.ndarray]:
        """Rays for every pixel, shape (H, W, 3) each (origins, directions).

        The camera-space lattice is memoised per intrinsics (it is
        pose-independent), so repeated full-frame generation only pays
        the rotation + normalisation.
        """
        return self._world_rays(_camera_dir_grid(self.intrinsics))

    # -- projection ---------------------------------------------------------

    def project_points(self, points_world: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project world points to pixel coordinates and camera-space depth.

        Returns ``(uv, depth)`` where ``uv`` has shape (..., 2) and ``depth``
        is the z coordinate in the camera frame (positive in front of the
        camera).  Points behind the camera get non-positive depth; callers
        must mask them.
        """
        points = np.asarray(points_world, dtype=float)
        w2c = self.w2c
        cam = points @ w2c[:3, :3].T + w2c[:3, 3]
        depth = cam[..., 2]
        safe = np.where(np.abs(depth) < 1e-12, 1e-12, depth)
        intr = self.intrinsics
        u = intr.fx * cam[..., 0] / safe + intr.cx
        v = intr.fy * cam[..., 1] / safe + intr.cy
        return np.stack([u, v], axis=-1), depth

    def visible_mask(self, uv: np.ndarray, depth: np.ndarray) -> np.ndarray:
        """Boolean mask of projections inside the image with positive depth."""
        u, v = uv[..., 0], uv[..., 1]
        return (
            (depth > 0.0)
            & (u >= 0.0) & (u < self.width)
            & (v >= 0.0) & (v < self.height)
        )
