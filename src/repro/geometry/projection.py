"""Perspective projection with z-buffered splatting (step 3 of SPARW).

Implements Eq. 3 of the paper: projecting a point cloud (already expressed in
the target camera's coordinate system) onto the target image plane.  Multiple
points can land on the same pixel; a z-buffer keeps the nearest, exactly as a
standard rasterisation pipeline would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.dispatch import override

__all__ = ["SplatResult", "splat_points", "scatter_resolve",
           "scatter_resolve_numpy"]


@dataclass
class SplatResult:
    """Result of z-buffer splatting a point cloud into a target view.

    ``image``/``depth`` hold colors and z-depths for covered pixels; ``covered``
    marks pixels that received at least one point.  Uncovered pixels keep a
    depth of ``+inf`` and a color of zero — SPARW later classifies them as
    disocclusion or void.
    """

    image: np.ndarray  # (H, W, 3)
    depth: np.ndarray  # (H, W)
    covered: np.ndarray  # (H, W) bool
    source_index: np.ndarray  # (H, W) int64, -1 where uncovered

    @property
    def coverage(self) -> float:
        """Fraction of pixels covered by at least one splatted point."""
        return float(self.covered.mean())


def splat_points(
    points_cam: np.ndarray,
    colors: np.ndarray,
    intrinsics,
    valid: np.ndarray | None = None,
    depth_merge_eps: float = 0.0,
) -> SplatResult:
    """Project camera-space points and resolve occlusion with a z-buffer.

    Parameters
    ----------
    points_cam:
        (N, 3) points in the *target* camera frame (z = depth).
    colors:
        (N, 3) per-point colors carried from the reference frame.
    intrinsics:
        Target :class:`~repro.geometry.camera.Intrinsics`.
    valid:
        Optional (N,) mask of points eligible for splatting.
    depth_merge_eps:
        Reserved for soft-merging nearly equal depths; the hard z-buffer
        (nearest wins) is what the paper's rasterisation pipeline does.
    """
    points = np.asarray(points_cam, dtype=float)
    colors = np.asarray(colors, dtype=float)
    height, width = intrinsics.height, intrinsics.width

    z = points[:, 2]
    ok = np.isfinite(z) & (z > 1e-9)
    if valid is not None:
        ok = ok & np.asarray(valid, dtype=bool)

    u = np.full(points.shape[0], -1.0)
    v = np.full(points.shape[0], -1.0)
    safe_z = np.where(ok, z, 1.0)
    u[ok] = intrinsics.fx * points[ok, 0] / safe_z[ok] + intrinsics.cx
    v[ok] = intrinsics.fy * points[ok, 1] / safe_z[ok] + intrinsics.cy

    px = np.floor(u).astype(np.int64)
    py = np.floor(v).astype(np.int64)
    ok &= (px >= 0) & (px < width) & (py >= 0) & (py < height)

    image = np.zeros((height, width, 3))
    depth = np.full((height, width), np.inf)
    source_index = np.full((height, width), -1, dtype=np.int64)

    idx = np.nonzero(ok)[0]
    if idx.size:
        flat = py[idx] * width + px[idx]
        scatter_resolve(flat, z[idx], idx, colors,
                        image.reshape(-1, 3), depth.reshape(-1),
                        source_index.reshape(-1))

    covered = np.isfinite(depth)
    return SplatResult(image=image, depth=depth, covered=covered,
                       source_index=source_index)


def scatter_resolve(flat_ids: np.ndarray, z: np.ndarray, src: np.ndarray,
                    colors: np.ndarray, image: np.ndarray,
                    depth: np.ndarray, source_index: np.ndarray) -> None:
    """Backend-dispatched :func:`scatter_resolve_numpy` (see there)."""
    fn = override("warp.scatter")
    if fn is not None:
        fn(flat_ids, z, src, colors, image, depth, source_index)
        return
    scatter_resolve_numpy(flat_ids, z, src, colors, image, depth,
                          source_index)


def scatter_resolve_numpy(flat_ids: np.ndarray, z: np.ndarray,
                          src: np.ndarray, colors: np.ndarray,
                          image: np.ndarray, depth: np.ndarray,
                          source_index: np.ndarray) -> None:
    """Z-buffer resolve: scatter each point's color/depth, nearest wins.

    ``flat_ids`` (M,) are flat pixel ids, ``z`` (M,) their depths, and
    ``src`` (M,) their indices into the full point set; ``image`` (P, 3),
    ``depth`` (P,), and ``source_index`` (P,) are flat per-pixel output
    views mutated in place.  Sorting by depth descending with a stable
    sort means the final (nearest) write survives, and among equal
    depths the later-arriving point wins — alternate backends must
    reproduce that tie behavior exactly.
    """
    order = np.argsort(-z, kind="stable")
    flat_sorted = flat_ids[order]
    src_sorted = src[order]
    depth[flat_sorted] = z[order]
    image[flat_sorted] = colors[src_sorted]
    source_index[flat_sorted] = src_sorted
