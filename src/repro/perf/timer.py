"""Wall-clock section instrumentation with a negligible-overhead no-op mode.

Hot paths are annotated once, unconditionally::

    from ..perf.timer import section

    with section("nerf.render_rays"):
        ...

With no timer activated (the default), :func:`section` returns a shared
no-op context manager — one global read and an attribute-free ``with``
block, well under a microsecond per call (bounded by
``tests/perf/test_timer.py``).  To actually measure, activate a
:class:`Timer` around the region of interest::

    timer = Timer()
    with activate(timer):
        run_workload()
    print(timer.report())

Timers are plain accumulators: per section name they keep call count and
total/min/max nanoseconds.  Re-entering a section name that is already
open (recursion, a helper annotated with its caller's name) tracks
nesting depth and accumulates only on the outermost exit, so nested
entries never double-count wall time; activation nests like a stack.

Activation rides the shared observability backbone
(:mod:`repro.obs.runtime`): ``activate(timer)`` installs the timer into
the active :class:`~repro.obs.runtime.Observation` (preserving any
tracer/metrics already active), so one ``repro.obs.activate`` can drive
sections, tracing, and metrics together.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..obs import runtime as _runtime
from ..obs.runtime import Observation

__all__ = ["SectionStats", "Section", "Timer", "NULL_TIMER", "activate",
           "section"]


@dataclass
class SectionStats:
    """Accumulated wall-clock statistics for one named section."""

    calls: int = 0
    total_ns: int = 0
    min_ns: int = 0
    max_ns: int = 0

    @property
    def mean_ns(self) -> float:
        """Mean nanoseconds per call (0.0 before any call)."""
        return self.total_ns / self.calls if self.calls else 0.0

    def add(self, elapsed_ns: int) -> None:
        """Fold one measured call into the running statistics."""
        if self.calls == 0:
            self.min_ns = self.max_ns = elapsed_ns
        else:
            self.min_ns = min(self.min_ns, elapsed_ns)
            self.max_ns = max(self.max_ns, elapsed_ns)
        self.calls += 1
        self.total_ns += elapsed_ns


class Section:
    """Context manager timing one ``with`` block into a :class:`Timer`."""

    __slots__ = ("_timer", "_name", "_start", "_outermost")

    def __init__(self, timer: "Timer", name: str):
        self._timer = timer
        self._name = name
        self._start = 0
        self._outermost = False

    def __enter__(self) -> "Section":
        self._outermost = self._timer._enter(self._name)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter_ns() - self._start
        self._timer._exit(self._name, elapsed, self._outermost)


class _NullSection:
    """Shared do-nothing section: the inactive-mode fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SECTION = _NullSection()


class Timer:
    """Accumulates wall-clock time per named section.

    ``enabled=False`` turns every :meth:`section` into the shared no-op,
    so a timer can be threaded through call sites and switched off
    without changing them.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._stats: dict[str, SectionStats] = {}
        # Open-entry count per section name; re-entrant entries only
        # accumulate when the outermost with-block exits.
        self._depth: dict[str, int] = {}

    def section(self, name: str):
        """A context manager timing ``name``, or the no-op when disabled."""
        if not self.enabled:
            return _NULL_SECTION
        return Section(self, name)

    def _enter(self, name: str) -> bool:
        """Register one entry of ``name``; True iff it is the outermost."""
        depth = self._depth.get(name, 0)
        self._depth[name] = depth + 1
        return depth == 0

    def _exit(self, name: str, elapsed_ns: int, outermost: bool) -> None:
        """Register one exit; only the outermost one accumulates."""
        depth = self._depth.get(name, 1) - 1
        if depth <= 0:
            self._depth.pop(name, None)
        else:
            self._depth[name] = depth
        if outermost:
            self.record(name, elapsed_ns)

    def record(self, name: str, elapsed_ns: int) -> None:
        """Fold one externally measured duration into section ``name``."""
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SectionStats()
        stats.add(elapsed_ns)

    def stats(self) -> dict:
        """``{section name: SectionStats}`` snapshot (live objects)."""
        return dict(self._stats)

    def total_ns(self, name: str) -> int:
        """Total nanoseconds recorded for ``name`` (0 if never entered)."""
        stats = self._stats.get(name)
        return stats.total_ns if stats is not None else 0

    def reset(self) -> None:
        """Drop every accumulated section (open-entry depth included)."""
        self._stats.clear()
        self._depth.clear()

    def report(self) -> list:
        """Sections as dict rows (descending total time), for tables/JSON."""
        rows = []
        for name, stats in sorted(self._stats.items(),
                                  key=lambda kv: -kv[1].total_ns):
            rows.append({
                "section": name,
                "calls": stats.calls,
                "total_ms": stats.total_ns / 1e6,
                "mean_us": stats.mean_ns / 1e3,
                "min_us": stats.min_ns / 1e3,
                "max_us": stats.max_ns / 1e3,
            })
        return rows


class _NullTimer(Timer):
    """A permanently disabled timer (``section`` is always the no-op)."""

    def __init__(self):
        super().__init__(enabled=False)

    def record(self, name: str, elapsed_ns: int) -> None:
        """Discard the measurement (the null timer accumulates nothing)."""


NULL_TIMER = _NullTimer()


@contextmanager
def activate(timer: Timer):
    """Route module-level :func:`section` calls into ``timer`` while open.

    Installs the timer into the shared observability backbone, keeping
    whatever tracer/metrics the enclosing activation already carries.
    Activations nest: the innermost timer wins, and the previous
    observation is restored on exit.
    """
    enclosing = _runtime.current()
    obs = Observation(
        timer=timer,
        tracer=enclosing.tracer if enclosing is not None else None,
        metrics=enclosing.metrics if enclosing is not None else None,
    )
    with _runtime.activate(obs):
        yield timer


def section(name: str):
    """Time ``name`` into the active timer; a shared no-op when none is.

    This is the annotation product code uses.  The inactive path costs
    one global read, one comparison, and an empty ``with`` protocol —
    negligible against any numpy call.
    """
    return _runtime.section(name)
