"""Wall-clock section instrumentation with a negligible-overhead no-op mode.

Hot paths are annotated once, unconditionally::

    from ..perf.timer import section

    with section("nerf.render_rays"):
        ...

With no timer activated (the default), :func:`section` returns a shared
no-op context manager — one global read and an attribute-free ``with``
block, well under a microsecond per call (bounded by
``tests/perf/test_timer.py``).  To actually measure, activate a
:class:`Timer` around the region of interest::

    timer = Timer()
    with activate(timer):
        run_workload()
    print(timer.report())

Timers are plain accumulators: per section name they keep call count and
total/min/max nanoseconds.  Nesting the same section name is allowed
(each ``with`` records independently); activation nests like a stack.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["SectionStats", "Section", "Timer", "NULL_TIMER", "activate",
           "section"]


@dataclass
class SectionStats:
    """Accumulated wall-clock statistics for one named section."""

    calls: int = 0
    total_ns: int = 0
    min_ns: int = 0
    max_ns: int = 0

    @property
    def mean_ns(self) -> float:
        """Mean nanoseconds per call (0.0 before any call)."""
        return self.total_ns / self.calls if self.calls else 0.0

    def add(self, elapsed_ns: int) -> None:
        """Fold one measured call into the running statistics."""
        if self.calls == 0:
            self.min_ns = self.max_ns = elapsed_ns
        else:
            self.min_ns = min(self.min_ns, elapsed_ns)
            self.max_ns = max(self.max_ns, elapsed_ns)
        self.calls += 1
        self.total_ns += elapsed_ns


class Section:
    """Context manager timing one ``with`` block into a :class:`Timer`."""

    __slots__ = ("_timer", "_name", "_start")

    def __init__(self, timer: "Timer", name: str):
        self._timer = timer
        self._name = name
        self._start = 0

    def __enter__(self) -> "Section":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer.record(self._name, time.perf_counter_ns() - self._start)


class _NullSection:
    """Shared do-nothing section: the inactive-mode fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SECTION = _NullSection()


class Timer:
    """Accumulates wall-clock time per named section.

    ``enabled=False`` turns every :meth:`section` into the shared no-op,
    so a timer can be threaded through call sites and switched off
    without changing them.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._stats: dict[str, SectionStats] = {}

    def section(self, name: str):
        """A context manager timing ``name``, or the no-op when disabled."""
        if not self.enabled:
            return _NULL_SECTION
        return Section(self, name)

    def record(self, name: str, elapsed_ns: int) -> None:
        """Fold one externally measured duration into section ``name``."""
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SectionStats()
        stats.add(elapsed_ns)

    def stats(self) -> dict:
        """``{section name: SectionStats}`` snapshot (live objects)."""
        return dict(self._stats)

    def total_ns(self, name: str) -> int:
        """Total nanoseconds recorded for ``name`` (0 if never entered)."""
        stats = self._stats.get(name)
        return stats.total_ns if stats is not None else 0

    def reset(self) -> None:
        """Drop every accumulated section."""
        self._stats.clear()

    def report(self) -> list:
        """Sections as dict rows (descending total time), for tables/JSON."""
        rows = []
        for name, stats in sorted(self._stats.items(),
                                  key=lambda kv: -kv[1].total_ns):
            rows.append({
                "section": name,
                "calls": stats.calls,
                "total_ms": stats.total_ns / 1e6,
                "mean_us": stats.mean_ns / 1e3,
                "min_us": stats.min_ns / 1e3,
                "max_us": stats.max_ns / 1e3,
            })
        return rows


class _NullTimer(Timer):
    """A permanently disabled timer (``section`` is always the no-op)."""

    def __init__(self):
        super().__init__(enabled=False)

    def record(self, name: str, elapsed_ns: int) -> None:
        """Discard the measurement (the null timer accumulates nothing)."""


NULL_TIMER = _NullTimer()

# The currently active timer, consulted by module-level `section()`.
# None (the overwhelmingly common case) keeps hot paths on the no-op.
_active: Timer | None = None


@contextmanager
def activate(timer: Timer):
    """Route module-level :func:`section` calls into ``timer`` while open.

    Activations nest: the innermost timer wins, and the previous one is
    restored on exit.
    """
    global _active
    previous = _active
    _active = timer
    try:
        yield timer
    finally:
        _active = previous


def section(name: str):
    """Time ``name`` into the active timer; a shared no-op when none is.

    This is the annotation product code uses.  The inactive path costs
    one global read, one comparison, and an empty ``with`` protocol —
    negligible against any numpy call.
    """
    timer = _active
    if timer is None:
        return _NULL_SECTION
    return timer.section(name)
