"""Profiling and microbenchmark subsystem (``repro.perf``).

Three layers, importable independently:

* :mod:`repro.perf.timer` — ``Timer``/``Section`` wall-clock
  instrumentation with a negligible-overhead no-op mode.  Product hot
  paths (renderer, SPARW pipeline, engine) call
  :func:`~repro.perf.timer.section` unconditionally; unless a timer is
  activated the call is a shared no-op context manager.
* :mod:`repro.perf.bench` — the microbenchmark registry behind
  ``cli bench`` (field query, warp gather/scatter, disocclusion
  classification, volume-render compositing, engine round, cluster
  tick, end-to-end frames/s) and the ``BENCH_perf.json`` payload.
* :mod:`repro.perf.reference` — the scalar/unfused predecessors of
  every vectorized kernel, kept runnable for equivalence tests
  (``tests/perf/test_equivalence.py``) and for the harness's
  speedup-vs-baseline measurements.

Only the timer layer is re-exported here: it has no dependencies, so
product modules can import it without dragging in the bench harness.
:mod:`repro.perf.bench` and :mod:`repro.perf.compare` import large
parts of the codebase and must be imported as submodules.
"""

from .envinfo import environment_fingerprint
from .timer import NULL_TIMER, Section, SectionStats, Timer, activate, section

__all__ = ["Timer", "Section", "SectionStats", "NULL_TIMER", "activate",
           "section", "environment_fingerprint"]
