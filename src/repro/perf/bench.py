"""Microbenchmark registry and runner behind ``cli bench``.

Every kernel on the serving hot path registers a benchmark here; the
runner times each one, derives throughput (rays/s, samples/s, pixels/s,
frames/s), and — where a predecessor implementation survives in
:mod:`repro.perf.reference` — reports the measured speedup.  ``cli
bench`` persists the rows as ``BENCH_perf.json`` together with an
environment fingerprint, establishing the perf trajectory every PR is
judged against (compare two artifacts with ``compare_bench.py``).

Benchmarks run at two scales:

* full (default) — the :data:`~repro.harness.configs.DEFAULT` experiment
  scale; minutes of wall clock, stable numbers.
* ``quick=True`` — the :data:`~repro.harness.configs.FAST` scale with
  fewer repetitions; seconds of wall clock, for CI smoke.

The registry is data, not policy: each entry is ``fn(ctx) -> row dict``
and new kernels register with :func:`register`.  Registered benchmarks
must return finite, positive ``ns_per_op`` (enforced by
``tests/perf/test_registry.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.sparw.disocclusion import classify_pixels
from ..core.sparw.pipeline import SparwRenderer
from ..core.sparw.warp import warp_frame
from ..geometry.pointcloud import depth_to_points, transform_points
from ..geometry.projection import splat_points
from ..geometry.transforms import relative_pose
from ..harness.configs import (DEFAULT, FAST, ExperimentConfig,
                               build_renderer, ground_truth_sequence,
                               make_camera)
from ..nerf.volume_render import composite
from .envinfo import environment_fingerprint
from .reference import (decode_reference, interpolate_hash_reference,
                        interpolate_voxel_reference, reference_geometry,
                        reference_renderer)
from .timer import Timer, activate

__all__ = ["register", "registered_kernels", "run_benchmarks",
           "BenchContext"]

REGISTRY: dict = {}

# The default scene/algorithm the headline frames/s number is measured on.
DEFAULT_SCENE = "lego"
DEFAULT_ALGORITHM = "directvoxgo"


@dataclass
class BenchContext:
    """Everything a benchmark body needs: scale + rep counts.

    ``reps`` is the per-kernel repetition count (after one untimed
    warmup); ``quick`` selects the FAST config and is surfaced so
    benchmarks can shrink their synthetic inputs.  ``backend`` and
    ``engine_workers`` carry the run's kernel-backend selection (see
    :mod:`repro.backend`) so engine-level benchmarks thread it through
    to their :class:`~repro.engine.MultiSessionEngine`.
    """

    config: ExperimentConfig
    quick: bool
    reps: int
    backend: str | None = None
    engine_workers: int | None = None


def register(name: str):
    """Decorator: add ``fn(ctx) -> row`` to the registry under ``name``."""
    def decorator(fn):
        if name in REGISTRY:
            raise ValueError(f"duplicate benchmark {name!r}")
        REGISTRY[name] = fn
        return fn
    return decorator


def registered_kernels() -> list:
    """Registered benchmark names, in registration order."""
    return list(REGISTRY)


def _time_reps(fn, reps: int) -> float:
    """Mean wall seconds per call of ``fn`` (one untimed warmup)."""
    fn()
    start = time.perf_counter_ns()
    for _ in range(reps):
        fn()
    return (time.perf_counter_ns() - start) / reps / 1e9


def _row(kernel: str, unit: str, items: int, reps: int, wall_s: float,
         **extra) -> dict:
    """Uniform benchmark row: identity, scale, ns/op, throughput."""
    ops_per_s = items / wall_s if wall_s > 0 else float("inf")
    row = {
        "kernel": kernel,
        "unit": unit,
        "items": int(items),
        "reps": int(reps),
        "wall_s": wall_s,
        "ns_per_op": wall_s / items * 1e9 if items else 0.0,
        f"{unit}s_per_s": ops_per_s,
    }
    row.update(extra)
    return row


def _sample_points(config: ExperimentConfig, quick: bool, field
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic in-bounds query points + unit view dirs for a field."""
    count = 50_000 if quick else 200_000
    rng = np.random.default_rng(1234)
    lo, hi = field.bounds
    points = rng.uniform(size=(count, 3)) * (hi - lo) + lo
    dirs = rng.normal(size=(count, 3))
    dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
    return points, dirs


def _field_query_row(ctx: BenchContext, algorithm: str, reference_interp
                     ) -> dict:
    """Shared body of the per-algorithm field-query benchmarks."""
    renderer = build_renderer(algorithm, DEFAULT_SCENE, ctx.config)
    field = renderer.field
    points, dirs = _sample_points(ctx.config, ctx.quick, field)

    def query():
        features = field.interpolate(points)
        field.decode(features, dirs)

    wall = _time_reps(query, ctx.reps)
    extra = {}
    if reference_interp is not None:
        def query_reference():
            features = reference_interp(field, points)
            decode_reference(field.decoder, features, dirs)

        ref_wall = _time_reps(query_reference, max(1, ctx.reps // 2))
        extra["ns_per_op_reference"] = ref_wall / len(points) * 1e9
        extra["speedup_x"] = ref_wall / wall
    return _row(f"field_query.{algorithm}", "sample", len(points),
                ctx.reps, wall, **extra)


@register("field_query.directvoxgo")
def bench_field_query_voxel(ctx: BenchContext) -> dict:
    """Stage G+F on the dense voxel grid (gather + trilinear + decode)."""
    return _field_query_row(ctx, "directvoxgo", interpolate_voxel_reference)


@register("field_query.instant_ngp")
def bench_field_query_hash(ctx: BenchContext) -> dict:
    """Stage G+F on the multi-resolution hash grid (per-level gathers)."""
    return _field_query_row(ctx, "instant_ngp", interpolate_hash_reference)


@register("field_query.tensorf")
def bench_field_query_tensorf(ctx: BenchContext) -> dict:
    """Stage G+F on the factorised tensor (plane/vector gathers)."""
    return _field_query_row(ctx, "tensorf", None)


def _warp_inputs(ctx: BenchContext):
    """A rendered reference frame + target camera one window step ahead."""
    renderer = build_renderer(DEFAULT_ALGORITHM, DEFAULT_SCENE, ctx.config)
    camera = make_camera(ctx.config)
    trajectory, _ = ground_truth_sequence(DEFAULT_SCENE, ctx.config)
    reference, _ = SparwRenderer(renderer, camera).render_reference(
        trajectory.poses[0])
    target_camera = camera.with_pose(
        trajectory.poses[min(4, len(trajectory.poses) - 1)])
    return reference, camera.with_pose(reference.c2w), target_camera


@register("warp.gather")
def bench_warp_gather(ctx: BenchContext) -> dict:
    """SPARW steps 1-2: per-pixel depth lift + rigid transform."""
    reference, ref_camera, target_camera = _warp_inputs(ctx)
    transform = relative_pose(reference.c2w, target_camera.c2w)
    lift_depth = np.where(np.isfinite(reference.depth), reference.depth, 1e4)

    def gather():
        points = depth_to_points(lift_depth, ref_camera.intrinsics)
        transform_points(points, transform)

    wall = _time_reps(gather, ctx.reps)
    return _row("warp.gather", "pixel", lift_depth.size, ctx.reps, wall)


@register("warp.scatter")
def bench_warp_scatter(ctx: BenchContext) -> dict:
    """SPARW step 3: z-buffered splat of the lifted cloud (Eq. 3)."""
    reference, ref_camera, target_camera = _warp_inputs(ctx)
    transform = relative_pose(reference.c2w, target_camera.c2w)
    lift_depth = np.where(np.isfinite(reference.depth), reference.depth, 1e4)
    points = transform_points(
        depth_to_points(lift_depth, ref_camera.intrinsics), transform)
    colors = reference.image.reshape(-1, 3)

    wall = _time_reps(
        lambda: splat_points(points, colors, target_camera.intrinsics),
        ctx.reps)
    return _row("warp.scatter", "pixel", lift_depth.size, ctx.reps, wall)


@register("disocclusion.classify")
def bench_disocclusion(ctx: BenchContext) -> dict:
    """Pixel partition of a naive warp into warped/disoccluded/void."""
    reference, ref_camera, target_camera = _warp_inputs(ctx)
    warp = warp_frame(reference, ref_camera, target_camera)
    wall = _time_reps(lambda: classify_pixels(warp, 30.0), ctx.reps)
    return _row("disocclusion.classify", "pixel", warp.depth.size,
                ctx.reps, wall)


@register("volume.composite")
def bench_composite(ctx: BenchContext) -> dict:
    """Segmented alpha compositing over a synthetic flat sample stream."""
    num_rays = 2_000 if ctx.quick else 9_216
    per_ray = ctx.config.samples_per_ray
    rng = np.random.default_rng(7)
    count = num_rays * per_ray
    sigmas = rng.uniform(0.0, 50.0, size=count)
    rgbs = rng.uniform(size=(count, 3))
    t_values = np.tile(np.linspace(0.5, 4.0, per_ray), num_rays)
    deltas = np.full(count, 3.5 / per_ray)
    ray_index = np.repeat(np.arange(num_rays), per_ray)

    wall = _time_reps(
        lambda: composite(sigmas, rgbs, t_values, deltas, ray_index,
                          num_rays), ctx.reps)
    return _row("volume.composite", "sample", count, ctx.reps, wall)


@register("render_rays.full_frame")
def bench_render_rays(ctx: BenchContext) -> dict:
    """One full-frame ``render_rays`` call (sample + gather + decode +
    composite), with the reference-kernel path for the speedup column."""
    renderer = build_renderer(DEFAULT_ALGORITHM, DEFAULT_SCENE, ctx.config)
    camera = make_camera(ctx.config)
    trajectory, _ = ground_truth_sequence(DEFAULT_SCENE, ctx.config)
    origins, directions = camera.with_pose(trajectory.poses[0]).generate_rays()
    flat_o, flat_d = origins.reshape(-1, 3), directions.reshape(-1, 3)

    wall = _time_reps(lambda: renderer.render_rays(flat_o, flat_d), ctx.reps)
    baseline = reference_renderer(renderer)
    ref_wall = _time_reps(lambda: baseline.render_rays(flat_o, flat_d),
                          max(1, ctx.reps // 2))
    return _row("render_rays.full_frame", "ray", flat_o.shape[0], ctx.reps,
                wall, ns_per_op_reference=ref_wall / flat_o.shape[0] * 1e9,
                speedup_x=ref_wall / wall)


@register("engine.round")
def bench_engine_round(ctx: BenchContext) -> dict:
    """Batched multi-session engine rounds over a small heterogeneous mix."""
    from ..engine import MultiSessionEngine
    from ..workloads import build_mixed_sessions

    frames = 2 if ctx.quick else 4
    mix = "vr-lego:2,dolly-chair"
    reps = max(1, ctx.reps // 2)

    def serve():
        sessions = build_mixed_sessions(mix, ctx.config, frames=frames)
        return MultiSessionEngine(sessions, backend=ctx.backend,
                                  engine_workers=ctx.engine_workers).run()

    result = serve()  # warmup + work accounting
    timer = Timer()
    with activate(timer):
        wall = _time_reps(serve, reps)
    rays = result.batch.total_rays
    return _row("engine.round", "ray", rays, reps, wall,
                rounds=result.batch.rounds,
                frames_per_s=result.total_frames / wall,
                sections={r["section"]: round(r["total_ms"], 3)
                          for r in timer.report()})


@register("engine.round.scaling")
def bench_engine_scaling(ctx: BenchContext) -> list:
    """Multi-core scaling curve for the batched engine round.

    Serves the same heterogeneous mix serially (``workers=1``, the plain
    numpy path) and through the ``parallel`` backend's persistent worker
    pool at 2 and 4 workers (plus ``ctx.engine_workers`` when it names a
    different point), emitting one ``engine.round.workersN`` row per
    point with the serial-relative speedup and per-core efficiency
    (normalised by ``min(N, cores)`` so an undersized host reports
    honest numbers instead of a guaranteed shortfall).
    """
    import os

    from ..engine import MultiSessionEngine
    from ..workloads import build_mixed_sessions

    frames = 2 if ctx.quick else 4
    mix = "vr-lego:2,dolly-chair"
    reps = max(1, ctx.reps // 2)
    cores = os.cpu_count() or 1
    counts = [1, 2, 4]
    if ctx.engine_workers is not None and ctx.engine_workers not in counts:
        counts.append(ctx.engine_workers)

    rows = []
    serial_wall = None
    for workers in sorted(counts):
        def serve():
            sessions = build_mixed_sessions(mix, ctx.config, frames=frames)
            return MultiSessionEngine(
                sessions,
                backend=None if workers == 1 else "parallel",
                engine_workers=None if workers == 1 else workers).run()

        result = serve()  # warmup (pool spin-up, bake caches)
        wall = _time_reps(serve, reps)
        if serial_wall is None:
            serial_wall = wall
        speedup = serial_wall / wall
        rows.append(_row(
            f"engine.round.workers{workers}", "ray",
            result.batch.total_rays, reps, wall,
            backend="numpy" if workers == 1 else "parallel",
            workers=workers, cores=cores,
            frames_per_s=result.total_frames / wall,
            speedup_vs_serial=speedup,
            per_core_efficiency=speedup / min(workers, cores)))
    return rows


@register("cluster.tick")
def bench_cluster_tick(ctx: BenchContext) -> dict:
    """Discrete-event cluster simulator ticks (admission + render + serve)."""
    from ..cluster import simulate_cluster

    duration = 2.0 if ctx.quick else 4.0
    reps = max(1, ctx.reps // 2)

    def run():
        return simulate_cluster("vr-lego:2,dolly-chair", ctx.config,
                                rate_hz=1.5, duration_s=duration,
                                workers=2, frames=2, seed=0)

    report = run()
    timer = Timer()
    with activate(timer):
        wall = _time_reps(run, reps)
    frames = max(report.total_frames, 1)
    return _row("cluster.tick", "frame", frames, reps, wall,
                admitted=report.admitted,
                aggregate_fps=report.aggregate_fps,
                sections={r["section"]: round(r["total_ms"], 3)
                          for r in timer.report()})


@register("single_session.sparw")
def bench_single_session(ctx: BenchContext) -> dict:
    """End-to-end single-session SPARW frames/s on the default scene.

    The headline number: renders the default orbit once on the optimized
    kernels and once with every hot kernel pinned to its
    :mod:`repro.perf.reference` predecessor, reporting both frames/s and
    the speedup (the acceptance bar for perf work is >= 2x here).
    """
    renderer = build_renderer(DEFAULT_ALGORITHM, DEFAULT_SCENE, ctx.config)
    camera = make_camera(ctx.config)
    trajectory, _ = ground_truth_sequence(DEFAULT_SCENE, ctx.config)
    poses = trajectory.poses
    num_frames = len(poses)

    def render():
        sparw = SparwRenderer(renderer, camera, window=ctx.config.window)
        return sparw.render_sequence(poses)

    timer = Timer()
    with activate(timer):
        wall = _time_reps(render, ctx.reps)

    baseline = reference_renderer(renderer)

    def render_reference():
        sparw = SparwRenderer(baseline, camera, window=ctx.config.window)
        return sparw.render_sequence(poses)

    with reference_geometry():
        ref_wall = _time_reps(render_reference, max(1, ctx.reps // 2))

    return _row("single_session.sparw", "frame", num_frames, ctx.reps, wall,
                frames_per_s=num_frames / wall,
                frames_per_s_reference=num_frames / ref_wall,
                ns_per_op_reference=ref_wall / num_frames * 1e9,
                speedup_x=ref_wall / wall,
                sections={r["section"]: round(r["total_ms"], 3)
                          for r in timer.report()})


def _best_of(fn, ctx: BenchContext, repeat: int) -> list:
    """Run one registered benchmark ``repeat`` times; keep the fastest.

    The fastest attempt (smallest total measured wall time) is the one
    least polluted by scheduler noise, so best-of-N is what lands in the
    artifact.  Benchmarks may return one row or a list of rows (the
    scaling curve); the winning attempt's rows are returned as a list.
    """
    best = None
    for _ in range(repeat):
        result = fn(ctx)
        rows = result if isinstance(result, list) else [result]
        total = sum(row["wall_s"] for row in rows)
        if best is None or total < best[0]:
            best = (total, rows)
    return best[1]


def run_benchmarks(config: ExperimentConfig | None = None,
                   quick: bool = False, kernels: list | None = None,
                   repeat: int = 3, backend: str | None = None,
                   engine_workers: int | None = None) -> tuple[list, dict]:
    """Run the registered microbenchmarks; returns ``(rows, extra)``.

    ``kernels`` restricts the run to a subset of registry names (unknown
    names raise ``KeyError``).  ``repeat`` runs every benchmark N times
    and keeps the fastest measurement (best-of-N).  ``backend`` installs
    a kernel backend (see :mod:`repro.backend`) for the whole run and is
    recorded in every row's ``backend`` column; ``engine_workers`` sizes
    the ``parallel`` backend's pool for the engine-level benchmarks.
    ``extra`` carries the environment fingerprint and run mode, and
    lands in ``BENCH_perf.json``'s ``extra`` block.
    """
    from ..backend import use_backend

    if config is None:
        config = FAST if quick else DEFAULT
    if kernels is None:
        kernels = registered_kernels()
    else:
        unknown = [k for k in kernels if k not in REGISTRY]
        if unknown:
            raise KeyError(f"unknown benchmark kernels {unknown}; "
                           f"registered: {registered_kernels()}")
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1 (got {repeat})")
    ctx = BenchContext(config=config, quick=quick, reps=2 if quick else 5,
                       backend=backend, engine_workers=engine_workers)
    rows = []
    with use_backend(backend) as active:
        for name in kernels:
            rows.extend(_best_of(REGISTRY[name], ctx, repeat))
    for row in rows:
        # The scaling curve labels its own rows (mixed serial/parallel);
        # everything else ran under the resolved run-wide backend.
        row.setdefault("backend", active.name)
        row["best_of"] = repeat
    extra = {
        "mode": "quick" if quick else "full",
        "environment": environment_fingerprint(),
        "kernels": list(kernels),
        "backend": active.name,
        "repeat": repeat,
    }
    # Rows keep their per-kernel "sections" breakdown (sourced from the
    # observability backbone's section timer) — compare_bench.py only
    # diffs ns_per_op, and the CLI table excludes the column.
    return rows, extra
