"""Scalar/unfused predecessors of every vectorized hot-path kernel.

When a hot path is rewritten for speed, its previous implementation moves
here *verbatim* (modulo plumbing: methods become functions taking the
object).  Two consumers keep these alive:

* ``tests/perf/test_equivalence.py`` asserts each optimized kernel is
  **bit-identical** to its predecessor on representative inputs — the
  contract that lets the golden suite stay byte-stable across perf work.
* :mod:`repro.perf.bench` runs both sides and reports the speedup, so
  ``BENCH_perf.json`` documents what the optimization bought on the
  machine that produced it.

Nothing in the serving stack imports this module.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..geometry.rays import intersect_aabb
from ..nerf.encoding import sh_basis_deg1
from ..nerf.fields.interp import flatten_index
from ..nerf.renderer import NeRFRenderer
from ..nerf.sampling import OccupancyGrid, RaySamples, UniformSampler

__all__ = [
    "occupied_reference", "sample_reference", "trilinear_setup_reference",
    "bilinear_setup_reference", "interpolate_voxel_reference",
    "interpolate_hash_reference", "decode_reference",
    "depth_to_points_reference", "rays_for_pixels_reference",
    "generate_rays_reference", "ReferenceSampler", "ReferenceField",
    "reference_renderer", "reference_geometry",
]


# -- occupancy lookup (pre: per-point 3-D fancy indexing) ---------------------

def occupied_reference(grid: OccupancyGrid, points: np.ndarray) -> np.ndarray:
    """Boolean occupancy lookup via per-axis index triplets.

    Predecessor of :meth:`OccupancyGrid.occupied`, which now precomputes
    a flattened mask + integer strides at construction.
    """
    lo, hi = grid.bounds
    res = grid.occupancy.shape[0]
    coords = (np.asarray(points, dtype=float) - lo) / (hi - lo)
    idx = np.clip((coords * res).astype(np.int64), 0, res - 1)
    return grid.occupancy[idx[:, 0], idx[:, 1], idx[:, 2]]


# -- stratified sampling (pre: repeat-then-mask) ------------------------------

def sample_reference(sampler: UniformSampler, origins: np.ndarray,
                     directions: np.ndarray, bounds: tuple) -> RaySamples:
    """Predecessor of :meth:`UniformSampler.sample`.

    Materialises per-sample directions/deltas/ray ids for *every*
    ray-sample pair with ``np.repeat`` and only then applies the keep
    mask; the optimized version derives them from the kept indices.
    """
    origins = np.atleast_2d(np.asarray(origins, dtype=float))
    directions = np.atleast_2d(np.asarray(directions, dtype=float))
    num_rays = origins.shape[0]
    lo, hi = bounds

    t_near, t_far, hit = intersect_aabb(origins, directions, lo, hi,
                                        near=1e-4)
    spans = np.where(hit, t_far - t_near, 0.0)
    steps = np.arange(sampler.num_samples)
    if sampler.jitter:
        offsets = sampler._rng.uniform(size=(num_rays, sampler.num_samples))
    else:
        offsets = np.full((num_rays, sampler.num_samples), 0.5)
    t = (t_near[:, None]
         + (steps[None, :] + offsets) / sampler.num_samples * spans[:, None])
    delta = spans / sampler.num_samples

    positions = origins[:, None, :] + t[..., None] * directions[:, None, :]
    keep = np.repeat(hit[:, None], sampler.num_samples, axis=1)
    if sampler.occupancy is not None:
        occ = occupied_reference(sampler.occupancy, positions.reshape(-1, 3))
        keep &= occ.reshape(num_rays, sampler.num_samples)

    flat_keep = keep.reshape(-1)
    ray_index = np.repeat(np.arange(num_rays), sampler.num_samples)[flat_keep]
    return RaySamples(
        positions=positions.reshape(-1, 3)[flat_keep],
        directions=np.repeat(directions, sampler.num_samples,
                             axis=0)[flat_keep],
        t_values=t.reshape(-1)[flat_keep],
        deltas=np.repeat(delta, sampler.num_samples)[flat_keep],
        ray_index=ray_index,
        num_rays=num_rays,
    )


# -- N-linear setup (pre: per-call corner tables, 3-D flatten) ----------------

def trilinear_setup_reference(coords01: np.ndarray, resolution
                              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Predecessor of :func:`repro.nerf.fields.interp.trilinear_setup`.

    Rebuilds the corner table per call and flattens the (N, 8, 3)
    vertex lattice directly; the optimized version adds precomputed
    per-corner flat offsets to the base vertex id.
    """
    coords01 = np.atleast_2d(np.asarray(coords01, dtype=float))
    cells = np.broadcast_to(np.asarray(resolution, dtype=np.int64), (3,))
    scaled = np.clip(coords01, 0.0, 1.0) * cells.astype(float)
    cell = np.minimum(np.floor(scaled).astype(np.int64), cells - 1)
    frac = scaled - cell

    cell_shape = tuple(int(c) for c in cells)
    vertex_shape = tuple(int(c) + 1 for c in cells)
    cell_ids = flatten_index(cell, cell_shape)

    corners = np.array([[i, j, k]
                        for i in (0, 1) for j in (0, 1) for k in (0, 1)])
    vertex_multi = cell[:, None, :] + corners[None, :, :]
    vertex_ids = flatten_index(vertex_multi, vertex_shape)

    w = np.stack([1.0 - frac, frac], axis=-1)  # (N, 3, 2)
    weights = (w[:, 0, corners[:, 0]] * w[:, 1, corners[:, 1]]
               * w[:, 2, corners[:, 2]])
    return cell_ids, vertex_ids, weights


def bilinear_setup_reference(coords01: np.ndarray, resolution
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Predecessor of :func:`repro.nerf.fields.interp.bilinear_setup`."""
    coords01 = np.atleast_2d(np.asarray(coords01, dtype=float))
    cells = np.broadcast_to(np.asarray(resolution, dtype=np.int64), (2,))
    scaled = np.clip(coords01, 0.0, 1.0) * cells.astype(float)
    cell = np.minimum(np.floor(scaled).astype(np.int64), cells - 1)
    frac = scaled - cell

    cell_shape = tuple(int(c) for c in cells)
    vertex_shape = tuple(int(c) + 1 for c in cells)
    cell_ids = flatten_index(cell, cell_shape)

    corners = np.array([[i, j] for i in (0, 1) for j in (0, 1)])
    vertex_multi = cell[:, None, :] + corners[None, :, :]
    vertex_ids = flatten_index(vertex_multi, vertex_shape)

    w = np.stack([1.0 - frac, frac], axis=-1)
    weights = w[:, 0, corners[:, 0]] * w[:, 1, corners[:, 1]]
    return cell_ids, vertex_ids, weights


# -- feature gathering (pre: materialised (N, 8, F) gather + einsum) ----------

def interpolate_voxel_reference(field, points: np.ndarray) -> np.ndarray:
    """Predecessor of :meth:`VoxelGridField.interpolate`.

    Gathers the full (N, 8, F) corner-feature block before reducing it
    with one einsum; the optimized version accumulates corner-by-corner
    in the same (ascending) order, never materialising the block.
    """
    coords = field.normalized_coords(points)
    _, vertex_ids, weights = trilinear_setup_reference(coords,
                                                       field.resolution)
    gathered = field.vertex_features[vertex_ids]  # (N, 8, F)
    return np.einsum("nvf,nv->nf", gathered, weights)


def interpolate_hash_reference(field, points: np.ndarray) -> np.ndarray:
    """Predecessor of :meth:`HashGridField.interpolate` (per-level einsum)."""
    coords = field.normalized_coords(points)
    total = None
    for level in field.levels:
        _, slots, weights = level.slots_for(coords)
        part = np.einsum("nvf,nv->nf", level.table[slots], weights)
        total = part if total is None else total + part
    return total


# -- feature computation (pre: run the identity-constructed MLP) --------------

def decode_reference(decoder, features: np.ndarray, view_dirs: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Predecessor of :meth:`SHDecoder.decode`: full MLP forward pass.

    The decoder's MLP is built by ``identity_affine_mlp`` from 0/±1
    weights, so its output equals the core feature channels *exactly*
    (every dot product reduces to at most two nonzero terms); the
    optimized decode therefore skips the matmuls.  This reference runs
    them, which is what the equivalence test leans on.
    """
    features = np.atleast_2d(np.asarray(features, dtype=float))
    view_dirs = np.atleast_2d(np.asarray(view_dirs, dtype=float))
    sh = sh_basis_deg1(view_dirs)
    core = decoder.mlp(np.concatenate([features, sh], axis=-1))

    logit = np.clip(core[:, 0], -40.0, 40.0)
    sigma = decoder.max_density / (1.0 + np.exp(-logit))
    diffuse = core[:, 1:4]
    coeffs = core[:, 4:13].reshape(-1, 3, 3)
    view_basis = sh[:, 1:4]
    rgb = np.clip(diffuse + np.einsum("ncb,nb->nc", coeffs, view_basis),
                  0.0, 1.0)
    return sigma, rgb


# -- geometry (pre: rebuild pixel lattices every call) ------------------------

def depth_to_points_reference(depth: np.ndarray, intrinsics) -> np.ndarray:
    """Predecessor of :func:`repro.geometry.pointcloud.depth_to_points`.

    Rebuilds the meshgrid and normalised pixel lattice on every call;
    the optimized version caches the per-intrinsics lattice.
    """
    depth = np.asarray(depth, dtype=float)
    height, width = depth.shape
    us = np.arange(width, dtype=float) + 0.5
    vs = np.arange(height, dtype=float) + 0.5
    u, v = np.meshgrid(us, vs)
    x = (u - intrinsics.cx) / intrinsics.fx * depth
    y = (v - intrinsics.cy) / intrinsics.fy * depth
    points = np.stack([x, y, depth], axis=-1)
    return points.reshape(-1, 3)


def rays_for_pixels_reference(camera, u: np.ndarray, v: np.ndarray
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Predecessor of :meth:`PinholeCamera.rays_for_pixels` (no caching)."""
    intr = camera.intrinsics
    x = (np.asarray(u, dtype=float) - intr.cx) / intr.fx
    y = (np.asarray(v, dtype=float) - intr.cy) / intr.fy
    dirs_cam = np.stack([x, y, np.ones_like(x)], axis=-1)
    rot = camera.c2w[:3, :3]
    dirs_world = dirs_cam @ rot.T
    dirs_world = dirs_world / np.linalg.norm(dirs_world, axis=-1,
                                             keepdims=True)
    origins = np.broadcast_to(camera.position, dirs_world.shape).copy()
    return origins, dirs_world


def generate_rays_reference(camera) -> tuple[np.ndarray, np.ndarray]:
    """Predecessor of :meth:`PinholeCamera.generate_rays`."""
    us = np.arange(camera.width, dtype=float) + 0.5
    vs = np.arange(camera.height, dtype=float) + 0.5
    u, v = np.meshgrid(us, vs)
    return rays_for_pixels_reference(camera, u, v)


# -- whole-pipeline baseline --------------------------------------------------

class ReferenceSampler(UniformSampler):
    """A :class:`UniformSampler` clone pinned to the reference kernels."""

    def __init__(self, sampler: UniformSampler):
        super().__init__(num_samples=sampler.num_samples,
                         occupancy=sampler.occupancy,
                         jitter=sampler.jitter)
        self._rng = sampler._rng  # share RNG state for jittered parity

    def sample(self, origins: np.ndarray, directions: np.ndarray,
               bounds: tuple) -> RaySamples:
        """Route through :func:`sample_reference`."""
        return sample_reference(self, origins, directions, bounds)


class ReferenceField:
    """Proxy pinning a field's interpolate/decode to the reference kernels.

    Every other attribute (bounds, gather_plan, decoder, ...) delegates
    to the wrapped field, so the proxy drops into a
    :class:`~repro.nerf.renderer.NeRFRenderer` unchanged.
    """

    def __init__(self, field):
        self._field = field

    def __getattr__(self, name: str):
        return getattr(self._field, name)

    def interpolate(self, points: np.ndarray) -> np.ndarray:
        """Reference gather for voxel/hash fields; delegate otherwise."""
        inner = self._field
        if hasattr(inner, "vertex_features"):  # dense voxel grid
            return interpolate_voxel_reference(inner, points)
        if hasattr(inner, "levels"):  # multi-resolution hash grid
            return interpolate_hash_reference(inner, points)
        return inner.interpolate(points)

    def decode(self, features: np.ndarray, view_dirs: np.ndarray):
        """Reference decode: run the identity-constructed MLP for real."""
        return decode_reference(self._field.decoder, features, view_dirs)


def reference_renderer(renderer: NeRFRenderer) -> NeRFRenderer:
    """A renderer equivalent to ``renderer`` but on the reference kernels.

    Used by the bench harness to measure end-to-end speedup: same field
    data, same sampler configuration, same outputs (bit-identical), but
    every hot kernel takes its pre-optimization path.
    """
    return NeRFRenderer(ReferenceField(renderer.field),
                        ReferenceSampler(renderer.sampler),
                        background=renderer.background,
                        chunk_size=renderer.chunk_size,
                        opacity_threshold=renderer.opacity_threshold)


@contextmanager
def reference_geometry():
    """Swap the warp path's cached geometry kernels for their predecessors.

    The SPARW warp imports :func:`depth_to_points` and drives camera ray
    generation directly, so the baseline fps measurement patches those
    seams for the duration.  Only the bench harness and tests use this.
    """
    from ..core.sparw import warp as warp_module
    from ..geometry.camera import PinholeCamera

    saved_depth_to_points = warp_module.depth_to_points
    saved_rays_for_pixels = PinholeCamera.rays_for_pixels
    saved_generate_rays = PinholeCamera.generate_rays
    warp_module.depth_to_points = depth_to_points_reference
    PinholeCamera.rays_for_pixels = rays_for_pixels_reference
    # generate_rays no longer routes through rays_for_pixels (it uses the
    # memoised per-intrinsics lattice), so it needs its own patch or the
    # baseline would silently keep the optimization.
    PinholeCamera.generate_rays = generate_rays_reference
    try:
        yield
    finally:
        warp_module.depth_to_points = saved_depth_to_points
        PinholeCamera.rays_for_pixels = saved_rays_for_pixels
        PinholeCamera.generate_rays = saved_generate_rays
