"""Diff two ``BENCH_perf.json`` artifacts and flag regressions.

The benchmarking workflow is: every ``cli bench`` run persists
``BENCH_perf.json`` (rows + environment fingerprint); this tool compares
a *candidate* artifact against a *baseline* one, kernel by kernel, and
exits non-zero when any kernel slowed down beyond the threshold — the
contract CI and reviewers hold perf work to.

Usable as a module (:func:`compare_payloads`) or from a shell::

    python compare_bench.py old/BENCH_perf.json new/BENCH_perf.json
    python compare_bench.py --threshold 1.10 old.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..harness.reporting import SCHEMA_VERSION, format_table

__all__ = ["compare_payloads", "load_artifact", "main"]

# A kernel is flagged only when it slows down by more than this factor:
# wall-clock microbenchmarks jitter a few percent run-to-run, so a 25%
# default separates noise from real regressions at CI scale.
DEFAULT_THRESHOLD = 1.25


def load_artifact(path: str | Path) -> dict:
    """Read one ``BENCH_perf.json``; raises ``ValueError`` on bad shape.

    Artifacts written under a different ``schema_version`` (including
    pre-versioned ones that only carry v1's ``"schema"`` key) are
    refused outright: a cross-version ratio would silently compare
    fields that moved, so the caller gets a clear regenerate-me error
    instead of a ``KeyError`` deep in the diff.
    """
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "rows" not in payload:
        raise ValueError(f"{path}: not a BENCH_*.json payload (no rows)")
    version = payload.get("schema_version", payload.get("schema"))
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: artifact schema_version {version!r} does not match "
            f"this tool (expected {SCHEMA_VERSION}); regenerate it with "
            "the current 'cli bench'")
    return payload


def _by_kernel(payload: dict) -> dict:
    rows = payload.get("rows") or []
    named = {}
    for row in rows:
        kernel = row.get("kernel")
        if kernel is not None:
            named[kernel] = row
    return named


def compare_payloads(baseline: dict, candidate: dict,
                     threshold: float = DEFAULT_THRESHOLD) -> dict:
    """Compare two bench payloads; returns rows + regression verdicts.

    Returns ``{"rows": [...], "regressions": [...], "only_baseline":
    [...], "only_candidate": [...]}`` where each row carries the old/new
    ns/op and the ratio ``new / old`` (> 1 means slower).  A kernel
    regresses when its ratio exceeds ``threshold``.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    old_rows = _by_kernel(baseline)
    new_rows = _by_kernel(candidate)
    rows, regressions = [], []
    for kernel in [k for k in old_rows if k in new_rows]:
        old_ns = float(old_rows[kernel].get("ns_per_op", 0.0))
        new_ns = float(new_rows[kernel].get("ns_per_op", 0.0))
        ratio = new_ns / old_ns if old_ns > 0 else float("inf")
        # Rows measured on different kernel backends are not the same
        # experiment — report the ratio but never flag it as a
        # regression (rerun both sides on one backend to gate on it).
        old_backend = old_rows[kernel].get("backend")
        new_backend = new_rows[kernel].get("backend")
        mismatched = (old_backend is not None and new_backend is not None
                      and old_backend != new_backend)
        regressed = ratio > threshold and not mismatched
        rows.append({
            "kernel": kernel,
            "baseline_ns_per_op": old_ns,
            "candidate_ns_per_op": new_ns,
            "ratio": ratio,
            "verdict": ("backend-changed" if mismatched
                        else "REGRESSED" if regressed
                        else "improved" if ratio < 1.0 else "ok"),
        })
        if regressed:
            regressions.append(kernel)
    return {
        "rows": rows,
        "regressions": regressions,
        "only_baseline": [k for k in old_rows if k not in new_rows],
        "only_candidate": [k for k in new_rows if k not in old_rows],
    }


def main(argv: list | None = None) -> int:
    """CLI entry point: print the diff table, exit 1 on regressions."""
    parser = argparse.ArgumentParser(
        prog="compare_bench",
        description="Diff two BENCH_perf.json artifacts; non-zero exit "
                    "when a kernel regressed beyond the threshold.")
    parser.add_argument("baseline", help="baseline BENCH_perf.json")
    parser.add_argument("candidate", help="candidate BENCH_perf.json")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="slowdown ratio that counts as a regression "
                             f"(default {DEFAULT_THRESHOLD:.2f} = +25%%)")
    args = parser.parse_args(argv)
    try:
        baseline = load_artifact(args.baseline)
        candidate = load_artifact(args.candidate)
        result = compare_payloads(baseline, candidate,
                                  threshold=args.threshold)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"compare_bench: {exc}", file=sys.stderr)
        return 2

    print(format_table(result["rows"],
                       title=f"bench diff (threshold {args.threshold:.2f}x)"))
    for side in ("only_baseline", "only_candidate"):
        if result[side]:
            print(f"\n{side.replace('_', ' ')}: "
                  + ", ".join(result[side]))
    if result["regressions"]:
        print(f"\nREGRESSIONS: {', '.join(result['regressions'])}",
              file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
