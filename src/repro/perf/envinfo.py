"""Environment fingerprint embedded in every ``BENCH_perf.json``.

Benchmark numbers are only comparable between runs on like hardware and
like library versions; the fingerprint records enough to tell whether a
regression is a code change or an environment change.  Everything here
is JSON-native and cheap to collect (no subprocesses).
"""

from __future__ import annotations

import os
import platform
import sys
from pathlib import Path

import numpy as np

__all__ = ["environment_fingerprint", "git_revision"]


def git_revision(repo_root: str | os.PathLike | None = None) -> str | None:
    """Best-effort current commit hash, read straight from ``.git``.

    Walks up from ``repo_root`` (default: this file's location) to find a
    ``.git`` directory, then resolves ``HEAD`` — one file read, no git
    binary.  Returns ``None`` outside a checkout (e.g. an installed
    wheel); the fingerprint then simply omits the revision.
    """
    start = Path(repo_root) if repo_root is not None else Path(__file__)
    for parent in [start, *start.parents]:
        git_dir = parent / ".git"
        if not git_dir.is_dir():
            continue
        try:
            head = (git_dir / "HEAD").read_text().strip()
            if head.startswith("ref:"):
                ref = head.split(None, 1)[1]
                ref_file = git_dir / ref
                if ref_file.exists():
                    return ref_file.read_text().strip()
                packed = git_dir / "packed-refs"
                if packed.exists():
                    for line in packed.read_text().splitlines():
                        if line.endswith(" " + ref):
                            return line.split(" ", 1)[0]
                return None
            return head or None
        except OSError:
            return None
    return None


def environment_fingerprint() -> dict:
    """JSON-able snapshot of the interpreter, numpy, and host platform."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "byte_order": sys.byteorder,
        "git_revision": git_revision(),
    }
