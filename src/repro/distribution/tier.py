"""Two-tier field cache with bake-vs-transfer cost accounting.

The serving hierarchy a session's first frame walks, cheapest first:

1. **local** — the worker's own LRU of recently served fields: hit
   costs nothing on the virtual clock.
2. **shard** — the fleet-wide shard tier: if any rendezvous owner of
   the field holds a baked replica, the worker *transfers* it
   (``transfer_s``, milliseconds at modeled NIC bandwidth; the worker
   is not occupied while the bytes move).
3. **bake** — nobody holds it: the worker bakes the field from scene
   assets (``bake_s``, seconds), *occupying itself* for the duration,
   then seeds the replica at every shard owner.

:class:`FieldCostModel` sizes a field from the spec's resolved
:class:`~repro.harness.configs.ExperimentConfig` (dense grid / hash
table / tensor factors, per algorithm) so bake and transfer seconds
scale with the same knobs the renderers do.  :class:`ShardedFieldStore`
is pure deterministic bookkeeping on the simulator's virtual clock —
no wall time, no randomness — so seeded cluster runs stay
bit-reproducible with the tier enabled.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..obs.runtime import metric_inc, metric_observe
from .shardmap import ShardMap

__all__ = ["FieldCostModel", "ShardedFieldStore"]


@dataclass(frozen=True)
class FieldCostModel:
    """Bytes → seconds model for baking and moving reference fields."""

    bake_bytes_per_s: float = 4e6       # optimizing a field from assets
    transfer_bytes_per_s: float = 400e6  # intra-fleet copy bandwidth
    transfer_overhead_s: float = 0.01    # per-fetch RPC/setup floor

    def field_bytes(self, spec, config) -> int:
        """Modeled size of the spec's baked field at its resolved scale."""
        resolved = spec.resolve_config(config)
        if spec.algorithm == "instant_ngp":
            params = resolved.hash_levels * resolved.hash_table_size \
                * resolved.feature_dim
        elif spec.algorithm == "tensorf":
            res, rank = resolved.tensorf_resolution, resolved.tensorf_rank
            params = 3 * rank * (res * res + res) * resolved.feature_dim
        else:  # dense voxel grid (directvoxgo and friends)
            params = resolved.grid_resolution ** 3 \
                * (resolved.feature_dim + 1)
        return int(params) * 4  # float32

    def bake_s(self, nbytes: int) -> float:
        """Cold-start seconds to bake ``nbytes`` of field from assets."""
        return nbytes / self.bake_bytes_per_s

    def transfer_s(self, nbytes: int) -> float:
        """Seconds to pull an ``nbytes`` replica from a shard owner."""
        return self.transfer_overhead_s + nbytes / self.transfer_bytes_per_s


class ShardedFieldStore:
    """Per-worker local LRU in front of a replicated shard tier.

    ``acquire(worker_id, spec, now_s)`` resolves where the session's
    field comes from and returns ``(kind, delay_s)`` with ``kind`` one
    of ``"local"`` / ``"shard"`` / ``"bake"``.  ``replication=0``
    disables the shard tier entirely — every non-local access re-bakes,
    which is the per-worker-LRU-only baseline the headline experiment
    compares against.
    """

    def __init__(self, config, replication: int = 2,
                 cost_model: FieldCostModel | None = None,
                 local_entries: int = 8,
                 shard_capacity_bytes: int = 256 << 20,
                 catalog_size: int = 0, zipf_s: float | None = None):
        if local_entries < 1:
            raise ValueError(
                f"local_entries must be >= 1, got {local_entries}")
        self.config = config
        self.cost = cost_model or FieldCostModel()
        self.shard_map = ShardMap(replication=replication)
        self.catalog_size = int(catalog_size)
        self.zipf_s = zipf_s
        self.local_entries = int(local_entries)
        self.shard_capacity_bytes = int(shard_capacity_bytes)
        self._local: dict[str, OrderedDict[str, int]] = {}
        self._shard: dict[str, OrderedDict[str, int]] = {}
        self._counts: dict[str, dict[str, int]] = {}
        self._baked_keys: set[str] = set()
        self.bake_s_total = 0.0
        self.transfer_s_total = 0.0
        self.local_evictions = 0
        self.shard_evictions = 0

    # -- fleet membership ------------------------------------------------

    def register_worker(self, worker_id: str) -> None:
        """Join a worker: empty caches, added to the shard map."""
        self.shard_map.add(worker_id)
        self._local.setdefault(worker_id, OrderedDict())
        self._shard.setdefault(worker_id, OrderedDict())
        self._counts.setdefault(
            worker_id, {"local": 0, "shard": 0, "bake": 0})

    def remove_worker(self, worker_id: str) -> None:
        """Retire a worker: its replicas vanish; surviving ranks shift up."""
        self.shard_map.remove(worker_id)
        self._local.pop(worker_id, None)
        self._shard.pop(worker_id, None)

    # -- lookups ---------------------------------------------------------

    def holders(self, key: str) -> set[str]:
        """Live workers that can serve ``key`` without baking it."""
        held = {wid for wid, cache in self._shard.items() if key in cache}
        held.update(
            wid for wid, cache in self._local.items() if key in cache)
        return held

    def acquire(self, worker_id: str, spec, now_s: float = 0.0):
        """Resolve ``spec``'s field for ``worker_id`` → ``(kind, delay_s)``."""
        key = spec.cache_key(self.config)
        local = self._local.setdefault(worker_id, OrderedDict())
        shard = self._shard.setdefault(worker_id, OrderedDict())
        if key in local:
            local.move_to_end(key)
            self._count(worker_id, "local")
            metric_inc("cluster.field.local_hits")
            return "local", 0.0
        nbytes = self.cost.field_bytes(spec, self.config)
        if key in shard:
            # On-box replica in this worker's own shard slice: a tier-2
            # hit with no bytes on the wire (promoted into the LRU).
            shard.move_to_end(key)
            self._touch_local(worker_id, key, nbytes)
            self._count(worker_id, "shard")
            metric_inc("cluster.field.shard_hits")
            return "shard", 0.0
        owners = self.shard_map.owners(key)
        if any(key in self._shard.get(owner, ()) for owner in owners):
            delay = self.cost.transfer_s(nbytes)
            self._touch_local(worker_id, key, nbytes)
            self._count(worker_id, "shard")
            self.transfer_s_total += delay
            metric_inc("cluster.field.shard_hits")
            metric_observe("cluster.field.transfer_s", delay)
            return "shard", delay
        delay = self.cost.bake_s(nbytes)
        for owner in owners:
            self._shard_put(owner, key, nbytes)
        self._touch_local(worker_id, key, nbytes)
        self._count(worker_id, "bake")
        self._baked_keys.add(key)
        self.bake_s_total += delay
        metric_inc("cluster.field.bakes")
        metric_observe("cluster.field.bake_s", delay)
        return "bake", delay

    # -- internals -------------------------------------------------------

    def _count(self, worker_id: str, kind: str) -> None:
        counts = self._counts.setdefault(
            worker_id, {"local": 0, "shard": 0, "bake": 0})
        counts[kind] += 1

    def _touch_local(self, worker_id: str, key: str, nbytes: int) -> None:
        local = self._local.setdefault(worker_id, OrderedDict())
        local[key] = nbytes
        local.move_to_end(key)
        while len(local) > self.local_entries:
            local.popitem(last=False)
            self.local_evictions += 1
            metric_inc("cluster.field.local_evictions")

    def _shard_put(self, worker_id: str, key: str, nbytes: int) -> None:
        shard = self._shard.setdefault(worker_id, OrderedDict())
        shard[key] = nbytes
        shard.move_to_end(key)
        while sum(shard.values()) > self.shard_capacity_bytes \
                and len(shard) > 1:
            shard.popitem(last=False)
            self.shard_evictions += 1
            metric_inc("cluster.field.shard_evictions")

    # -- reporting -------------------------------------------------------

    def worker_stats(self, worker_id: str) -> dict:
        """Per-worker tier counters for :meth:`Worker.stats_row`."""
        counts = self._counts.get(
            worker_id, {"local": 0, "shard": 0, "bake": 0})
        shard = self._shard.get(worker_id, {})
        return {
            "field_local_hits": counts["local"],
            "field_shard_hits": counts["shard"],
            "field_bakes": counts["bake"],
            "shard_resident_bytes": int(sum(shard.values())),
        }

    def stats(self) -> dict:
        """Fleet-wide tier counters and hierarchy hit rate."""
        totals = {"local": 0, "shard": 0, "bake": 0}
        for counts in self._counts.values():
            for kind in totals:
                totals[kind] += counts[kind]
        lookups = sum(totals.values())
        hits = totals["local"] + totals["shard"]
        return {
            "replication": self.shard_map.replication,
            "field_lookups": lookups,
            "field_local_hits": totals["local"],
            "field_shard_hits": totals["shard"],
            "field_bakes": totals["bake"],
            "hierarchy_hit_rate": hits / lookups if lookups else 0.0,
            "local_hit_rate": totals["local"] / lookups if lookups else 0.0,
            "shard_hit_rate": totals["shard"] / lookups if lookups else 0.0,
            "unique_fields_baked": len(self._baked_keys),
            "bake_s_total": self.bake_s_total,
            "transfer_s_total": self.transfer_s_total,
            "local_evictions": self.local_evictions,
            "shard_evictions": self.shard_evictions,
            "shard_resident_bytes": int(
                sum(sum(c.values()) for c in self._shard.values())),
        }
