"""Rendezvous shard map: which workers own which baked fields.

Generalizes :func:`repro.cluster.placement.rendezvous_score` from "one
preferred worker per key" to an **owner set** of size ``replication``:
the top-R workers in the key's highest-random-weight ranking.  Because
every (key, worker) pair is scored independently, fleet resizes rebalance
deterministically and minimally:

* adding a worker re-homes only the keys for which the newcomer enters
  the top-R (≈ ``R × keys / (N + 1)`` of them in expectation);
* removing a worker changes ownership only for the keys it owned — the
  relative ranking of the survivors is untouched, so each affected key
  simply promotes the next-ranked survivor.

The map is pure bookkeeping (no I/O, no clock) and fully deterministic,
which lets the property suite in ``tests/distribution/`` state these
invariants exactly rather than statistically.
"""

from __future__ import annotations

from ..cluster.placement import rendezvous_score

__all__ = ["ShardMap"]


class ShardMap:
    """Deterministic key → owner-set mapping over a mutable fleet."""

    def __init__(self, members=(), replication: int = 2):
        if replication < 0:
            raise ValueError(f"replication must be >= 0, got {replication}")
        self.replication = int(replication)
        self._members: set[str] = set()
        for member in members:
            self.add(member)

    @property
    def members(self) -> tuple[str, ...]:
        """Current fleet, in stable id order."""
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def add(self, member: str) -> None:
        """Join a worker; idempotent."""
        self._members.add(member)

    def remove(self, member: str) -> None:
        """Retire a worker; idempotent (unknown ids are ignored)."""
        self._members.discard(member)

    def ranking(self, key: str) -> list[str]:
        """All members ordered best-first by rendezvous score for ``key``."""
        return sorted(self._members,
                      key=lambda m: rendezvous_score(key, m), reverse=True)

    def owners(self, key: str) -> tuple[str, ...]:
        """The ``min(replication, len(fleet))`` owners of ``key``, best-first."""
        if not self.replication or not self._members:
            return ()
        return tuple(self.ranking(key)[:self.replication])

    def primary(self, key: str) -> str | None:
        """Best-ranked owner of ``key`` (None for an empty fleet or R=0)."""
        owners = self.owners(key)
        return owners[0] if owners else None
