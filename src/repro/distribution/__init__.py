"""Field distribution tier: scene catalogs, shard maps, two-tier caches.

ROADMAP open item 4 ("sharded field serving for millions of scenes")
lives here.  The package answers three questions the single-worker
serving stack never had to ask:

* *What are we serving?* — :class:`SceneCatalog` expands the curated
  workload specs into hundreds-to-thousands of content-distinct
  variants under a seeded zipfian popularity law.
* *Who owns what?* — :class:`ShardMap` generalizes the cluster's
  rendezvous hash to replicated owner sets with deterministic,
  minimal rebalance on fleet resize.
* *What does a miss cost?* — :class:`ShardedFieldStore` charges
  bake-vs-transfer seconds on the simulator's virtual clock through a
  per-worker local LRU backed by the shard tier
  (:class:`FieldCostModel` sizes fields from the experiment config).

Everything is deterministic per seed; the cluster simulator threads the
store through placement, worker admission, and ``ClusterReport``.
"""

from .catalog import SceneCatalog
from .shardmap import ShardMap
from .tier import FieldCostModel, ShardedFieldStore

__all__ = ["SceneCatalog", "ShardMap", "FieldCostModel",
           "ShardedFieldStore", "expand_field_serving"]

DEFAULT_ZIPF_S = 1.1
DEFAULT_REPLICATION = 2


def expand_field_serving(mix, config, catalog: int,
                         zipf: float | None = None,
                         replication: int | None = None,
                         seed: int = 0):
    """Resolve ``--catalog/--zipf/--replication`` into runnable pieces.

    Returns ``(variant_mix, store)``: the zipf-weighted ``(spec, count)``
    pairs over a ``catalog``-sized :class:`SceneCatalog` seeded from
    ``seed``, and the :class:`ShardedFieldStore` the cluster simulator
    should attach.  Single implementation shared by ``simulate_cluster``
    and the experiment runner so both paths expand identically.
    """
    s = DEFAULT_ZIPF_S if zipf is None else float(zipf)
    r = DEFAULT_REPLICATION if replication is None else int(replication)
    catalog_obj = SceneCatalog(mix, catalog, seed=seed)
    store = ShardedFieldStore(config, replication=r,
                              catalog_size=len(catalog_obj), zipf_s=s)
    return catalog_obj.zipf_mix(s), store
