"""Seeded scene catalog: many content-distinct variants from few specs.

Fleet-scale serving is about the *number of distinct fields*, not the
number of distinct hand-built scenes.  :class:`SceneCatalog` expands a
curated workload mix into hundreds-to-thousands of variants by
perturbing each base spec's ``seed`` — every field the specs carry feeds
:meth:`~repro.workloads.WorkloadSpec.spec_hash`, so each variant gets a
distinct content-addressed ``cache_key`` (a distinct baked field as far
as the distribution tier is concerned) while reusing the existing scene
assets and trajectory builders.

Popularity follows a zipfian law over a seeded permutation of the
catalog (so "which variant is hot" is itself a function of the seed, not
of construction order), converted to exact integer arrival counts with
the same largest-remainder apportionment the control plane uses for
budget splits — the resulting mix plugs straight into the existing
count-weighted arrival samplers, keeping seeded runs bit-deterministic.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..control import split_budget
from ..workloads import WorkloadSpec, parse_mix

__all__ = ["SceneCatalog"]

# Spreads catalog seeds away from the (small-integer) base-spec seeds so
# variants never collide with a curated spec's own identity.
_SEED_STRIDE = 1_000_003


class SceneCatalog:
    """A seeded expansion of a workload mix into ``size`` distinct variants."""

    def __init__(self, mix, size: int, seed: int = 0):
        if size < 1:
            raise ValueError(f"catalog size must be >= 1, got {size}")
        bases = [spec for spec, _ in parse_mix(mix)]
        self.seed = int(seed)
        self.specs: tuple[WorkloadSpec, ...] = tuple(
            self._variant(bases[k % len(bases)], k) for k in range(size)
        )
        # Popularity rank of each variant (0 = hottest), decoupled from
        # construction order by a seeded shuffle.
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(size)
        self.ranks: tuple[int, ...] = tuple(int(r) for r in order)

    def _variant(self, base: WorkloadSpec, k: int) -> WorkloadSpec:
        derived = base.seed + _SEED_STRIDE * (self.seed + 1) + k
        return dataclasses.replace(base, name=f"{base.name}@{k:04d}",
                                   seed=derived)

    def __len__(self) -> int:
        return len(self.specs)

    def zipf_mix(self, s: float = 1.1,
                 total: int | None = None) -> list[tuple[WorkloadSpec, int]]:
        """Catalog as ``(spec, count)`` pairs under a zipf(s) popularity law.

        ``total`` is the integer weight budget spread over the catalog
        (default ``8 × size``); every variant keeps a floor count of 1 so
        the whole catalog stays samplable.  ``s = 0`` degenerates to a
        uniform mix.
        """
        if s < 0:
            raise ValueError(f"zipf skew must be >= 0, got {s}")
        size = len(self.specs)
        total = 8 * size if total is None else int(total)
        if total < size:
            raise ValueError(
                f"zipf mix total {total} cannot cover catalog size {size}")
        weights = [float((rank + 1) ** -s) for rank in self.ranks]
        shares = split_budget(total - size, weights)
        return [(spec, share + 1)
                for spec, share in zip(self.specs, shares)]
