"""Cicero's contributions: SPARW, fully-streaming rendering, bank interleaving."""

from . import layout, sparw, streaming

__all__ = ["layout", "sparw", "streaming"]
