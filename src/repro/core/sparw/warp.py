"""Forward warping of a reference frame into a target view (SPARW steps 1-3).

Implements the three lightweight stages of target-frame rendering from
Sec. III-B of the paper:

1. *Point-cloud conversion* (Eq. 1): lift the reference frame's pixels into
   3-D using its depth map.
2. *Transformation* (Eq. 2): re-express the cloud in the target camera frame.
3. *Re-projection* (Eq. 3): z-buffer splat onto the target image plane.

Void pixels (infinite depth — sky/background) are splatted at a far plane so
the disocclusion classifier can distinguish "nothing there" from "something
was hidden" (the paper's depth test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...geometry.camera import PinholeCamera
from ...geometry.pointcloud import depth_to_points, transform_points
from ...geometry.projection import splat_points
from ...geometry.transforms import relative_pose
from ...scenes.raytracer import Frame

__all__ = ["WarpResult", "warp_frame", "VOID_FAR_DEPTH"]

# Depth assigned to void (infinite-depth) reference pixels so they still
# project; anything this far is classified as void in the target frame.
VOID_FAR_DEPTH = 1.0e4


@dataclass
class WarpResult:
    """A naively warped target frame F'_tgt plus classification inputs.

    ``covered`` marks pixels that received a *surface* point; ``void`` marks
    pixels whose nearest splat came from the reference frame's background
    (infinite depth).  Remaining pixels are holes — candidate disocclusions.
    ``warp_angle_deg`` holds, for covered pixels, the angle theta subtended
    at the scene point by the reference and target camera centres (Fig. 8),
    used by the warping threshold heuristic.
    """

    image: np.ndarray  # (H, W, 3)
    depth: np.ndarray  # (H, W), +inf where not covered by a surface point
    covered: np.ndarray  # (H, W) bool, surface-covered
    void: np.ndarray  # (H, W) bool, far-plane-covered
    warp_angle_deg: np.ndarray  # (H, W), 0 where not covered

    @property
    def hole_mask(self) -> np.ndarray:
        """Pixels neither surface-covered nor void: disocclusion candidates."""
        return ~(self.covered | self.void)


def _fill_pinholes(image: np.ndarray, depth: np.ndarray, covered: np.ndarray,
                   angle: np.ndarray, min_neighbors: int = 5) -> None:
    """Fill isolated 1-pixel splat gaps from their covered neighbours.

    Forward point splatting leaves single-pixel "pinholes" wherever the view
    expands (one source pixel maps to slightly more than one target pixel).
    Real point renderers close these with a small splat kernel; we fill any
    hole with >= ``min_neighbors`` covered 8-neighbours using the neighbour
    mean, in place.  Genuine disocclusion bands are wider than one pixel and
    survive untouched.
    """
    height, width = depth.shape
    pad_cov = np.pad(covered, 1)
    # ``image`` is exactly 0.0 wherever ``covered`` is False (the warp
    # zeroes uncovered pixels before calling), and the padded depth is
    # masked the same way below, so the neighbour accumulation can add the
    # shifted slices directly — summing exact zeros instead of re-masking
    # with np.where per neighbour.  Bit-identical, 16 temporaries fewer.
    pad_img = np.pad(image, ((1, 1), (1, 1), (0, 0)))
    pad_depth = np.pad(np.where(covered, depth, 0.0), 1)

    neighbor_count = np.zeros((height, width), dtype=np.int64)
    color_sum = np.zeros_like(image)
    depth_sum = np.zeros_like(depth)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            if dy == 0 and dx == 0:
                continue
            cov = pad_cov[1 + dy:1 + dy + height, 1 + dx:1 + dx + width]
            neighbor_count += cov
            color_sum += pad_img[1 + dy:1 + dy + height,
                                 1 + dx:1 + dx + width]
            depth_sum += pad_depth[1 + dy:1 + dy + height,
                                   1 + dx:1 + dx + width]

    fill = ~covered & (neighbor_count >= min_neighbors)
    if fill.any():
        counts = neighbor_count[fill][:, None]
        image[fill] = color_sum[fill] / counts
        depth[fill] = depth_sum[fill] / counts[:, 0]
        covered[fill] = True
        angle[fill] = 0.0


def warp_frame(reference: Frame, ref_camera: PinholeCamera,
               target_camera: PinholeCamera,
               fill_pinholes: bool = True) -> WarpResult:
    """Warp ``reference`` (rendered at ``ref_camera``) into ``target_camera``.

    Both cameras must share intrinsics resolution-wise with the frames they
    produced.  Returns the naive warp F'_tgt; hole filling is the sparse
    NeRF pass handled by the SPARW pipeline.  ``fill_pinholes`` closes
    single-pixel splatting gaps (not true disocclusions) in the warped image.
    """
    intr = ref_camera.intrinsics
    if reference.depth.shape != (intr.height, intr.width):
        raise ValueError("reference frame and camera resolution mismatch")

    depth = reference.depth
    is_void = ~np.isfinite(depth)
    # Step 1: lift pixels to the reference camera frame; void pixels go to a
    # far plane so that they still carry "this direction is empty" info.
    lift_depth = np.where(is_void, VOID_FAR_DEPTH, depth)
    points_ref = depth_to_points(lift_depth, intr)
    colors = reference.image.reshape(-1, 3)

    # Step 2: reference-camera -> target-camera coordinates.
    t_ref_to_tgt = relative_pose(reference.c2w, target_camera.c2w)
    points_tgt = transform_points(points_ref, t_ref_to_tgt)

    # Step 3: z-buffer splat in the target view.
    splat = splat_points(points_tgt, colors, target_camera.intrinsics)

    flat_void = is_void.reshape(-1)
    src = splat.source_index
    has_point = src >= 0
    src_safe = np.where(has_point, src, 0)
    from_void = has_point & flat_void[src_safe]
    covered = has_point & ~from_void

    # Warp angle theta per covered pixel: angle at the scene point between
    # the two camera centres.
    angle = np.zeros_like(splat.depth)
    if covered.any():
        pts_world = transform_points(points_ref[src_safe[covered]],
                                     reference.c2w)
        to_ref = reference.c2w[:3, 3] - pts_world
        to_tgt = target_camera.position - pts_world
        nr = np.linalg.norm(to_ref, axis=-1)
        nt = np.linalg.norm(to_tgt, axis=-1)
        denom = np.where(nr * nt < 1e-12, 1.0, nr * nt)
        cos = np.clip((to_ref * to_tgt).sum(axis=-1) / denom, -1.0, 1.0)
        angle[covered] = np.degrees(np.arccos(cos))

    depth_out = np.where(covered, splat.depth, np.inf)
    image_out = np.where(covered[..., None], splat.image, 0.0)
    if fill_pinholes:
        covered = covered.copy()
        _fill_pinholes(image_out, depth_out, covered, angle)
        depth_out = np.where(covered, depth_out, np.inf)
    return WarpResult(image=image_out, depth=depth_out, covered=covered,
                      void=from_void & ~covered, warp_angle_deg=angle)
