"""SPARW rendering pipeline: reference path + warped target path.

Orchestrates the two rendering paths of Fig. 10:

* the compute-intensive path renders *reference frames* with full-frame NeRF
  at poses chosen by a reference policy (extrapolated/off-trajectory by
  default), and
* the lightweight path renders every *target frame* by warping the active
  reference, classifying holes, and sparse-NeRF-rendering only disoccluded
  pixels (Eq. 4).

The pipeline records per-frame work statistics (warped/disoccluded/void
fractions, sparse-ray counts, full-frame render stats) which the hardware
model turns into latency and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...geometry.camera import PinholeCamera
from ...nerf.renderer import NeRFRenderer, RenderStats
from ...scenes.raytracer import Frame
from .disocclusion import PixelClassification, classify_pixels, overlap_fraction
from .reference import ExtrapolatedReferencePolicy, OnTrajectoryReferencePolicy
from .warp import WarpResult, warp_frame

__all__ = ["TargetFrameRecord", "SparwSequenceResult", "SparwRenderer"]


@dataclass
class TargetFrameRecord:
    """Everything produced while rendering one target frame."""

    frame_index: int
    frame: Frame
    classification: PixelClassification
    overlap: float
    new_reference: bool
    sparse_stats: RenderStats
    reference_stats: RenderStats | None  # stats of the full render, if any
    warp_points: int  # points pushed through steps 1-3
    mean_warp_angle_deg: float


@dataclass
class SparwSequenceResult:
    """Result of rendering a pose sequence with SPARW."""

    records: list = field(default_factory=list)

    @property
    def frames(self) -> list:
        return [r.frame for r in self.records]

    @property
    def num_frames(self) -> int:
        return len(self.records)

    @property
    def num_references(self) -> int:
        return sum(1 for r in self.records if r.new_reference)

    def mean_warped_fraction(self) -> float:
        return float(np.mean([r.classification.warped_fraction
                              for r in self.records]))

    def mean_disoccluded_fraction(self) -> float:
        return float(np.mean([r.classification.disoccluded_fraction
                              for r in self.records]))

    def total_sparse_stats(self) -> RenderStats:
        total = RenderStats()
        for r in self.records:
            total = total.merge(r.sparse_stats)
        return total

    def total_reference_stats(self) -> RenderStats:
        total = RenderStats()
        for r in self.records:
            if r.reference_stats is not None:
                total = total.merge(r.reference_stats)
        return total


class SparwRenderer:
    """Renders pose sequences with sparse radiance warping.

    Parameters
    ----------
    renderer:
        The full-frame/sparse NeRF renderer (any field).
    camera:
        Camera template; its intrinsics are used for every frame.
    window:
        Number of target frames sharing one reference (the paper's N).
    policy:
        ``"extrapolated"`` (paper, off-trajectory, overlappable) or
        ``"on_trajectory"`` (TEMP baseline: chained warping from the
        previous output frame, resetting every window).
    angle_threshold_deg:
        Optional warping threshold phi (Sec. III-C); pixels warped across a
        wider angle are re-rendered by the NeRF model.
    """

    def __init__(self, renderer: NeRFRenderer, camera: PinholeCamera,
                 window: int = 16, policy: str = "extrapolated",
                 angle_threshold_deg: float | None = None):
        self.renderer = renderer
        self.camera = camera
        self.window = int(window)
        self.angle_threshold_deg = angle_threshold_deg
        if policy == "extrapolated":
            self.policy = ExtrapolatedReferencePolicy(window)
        elif policy == "on_trajectory":
            self.policy = OnTrajectoryReferencePolicy(window)
        else:
            raise ValueError(f"unknown reference policy {policy!r}")
        self._chained = policy == "on_trajectory"

    # -- reference path ----------------------------------------------------------

    def render_reference(self, pose: np.ndarray) -> tuple[Frame, RenderStats]:
        """Full-frame NeRF render at ``pose`` (the green path in Fig. 10)."""
        camera = self.camera.with_pose(pose)
        frame, out = self.renderer.render_frame(camera)
        return frame, out.stats

    # -- target path ------------------------------------------------------------

    def render_target(self, reference: Frame, pose: np.ndarray
                      ) -> tuple[Frame, WarpResult, PixelClassification,
                                 RenderStats]:
        """Warp ``reference`` to ``pose`` and fill disocclusions sparsely."""
        ref_camera = self.camera.with_pose(reference.c2w)
        target_camera = self.camera.with_pose(pose)
        warp = warp_frame(reference, ref_camera, target_camera)
        classification = classify_pixels(warp, self.angle_threshold_deg)

        image = warp.image.copy()
        depth = warp.depth.copy()
        hit = classification.warped.copy()

        pixel_ids = classification.rerender_pixel_ids()
        colors, z, out = self.renderer.render_pixels(target_camera, pixel_ids)
        if pixel_ids.size:
            flat_img = image.reshape(-1, 3)
            flat_img[pixel_ids] = colors
            flat_depth = depth.reshape(-1)
            flat_depth[pixel_ids] = z
            hit.reshape(-1)[pixel_ids] = np.isfinite(z)

        if self.renderer.background is not None:
            void = classification.void & ~classification.disoccluded
            if void.any():
                _, dirs = target_camera.generate_rays()
                bg = self.renderer.background(dirs.reshape(-1, 3))
                image.reshape(-1, 3)[void.reshape(-1)] = bg[void.reshape(-1)]

        frame = Frame(image=image, depth=depth, hit=hit,
                      c2w=target_camera.c2w.copy())
        return frame, warp, classification, out.stats

    # -- sequence rendering --------------------------------------------------------

    def render_sequence(self, poses: list) -> SparwSequenceResult:
        """Render every pose in order, managing references per the policy."""
        poses = [np.asarray(p, dtype=float) for p in poses]
        result = SparwSequenceResult()
        reference: Frame | None = None
        previous_output: Frame | None = None

        for i, pose in enumerate(poses):
            ref_stats = None
            new_ref = self.policy.needs_new_reference(i)
            if new_ref or reference is None:
                if self._chained and previous_output is not None:
                    # TEMP baseline: reuse the last *output* frame; no fresh
                    # full render (errors accumulate across windows too).
                    reference = previous_output
                else:
                    ref_pose = self.policy.reference_pose(i, poses)
                    reference, ref_stats = self.render_reference(ref_pose)

            frame, warp, classification, sparse_stats = self.render_target(
                reference, pose)
            if self._chained:
                # Chained warping: the next frame warps from this output.
                reference = frame
            previous_output = frame

            covered = classification.warped
            mean_angle = (float(warp.warp_angle_deg[covered].mean())
                          if covered.any() else 0.0)
            result.records.append(TargetFrameRecord(
                frame_index=i,
                frame=frame,
                classification=classification,
                overlap=overlap_fraction(warp),
                new_reference=ref_stats is not None,
                sparse_stats=sparse_stats,
                reference_stats=ref_stats,
                warp_points=reference.depth.size,
                mean_warp_angle_deg=mean_angle,
            ))
        return result
