"""SPARW rendering pipeline: reference path + warped target path.

Orchestrates the two rendering paths of Fig. 10:

* the compute-intensive path renders *reference frames* with full-frame NeRF
  at poses chosen by a reference policy (extrapolated/off-trajectory by
  default), and
* the lightweight path renders every *target frame* by warping the active
  reference, classifying holes, and sparse-NeRF-rendering only disoccluded
  pixels (Eq. 4).

The pipeline records per-frame work statistics (warped/disoccluded/void
fractions, sparse-ray counts, full-frame render stats) which the hardware
model turns into latency and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...geometry.camera import PinholeCamera
from ...nerf.renderer import NeRFRenderer, RenderStats
from ...perf.timer import section
from ...scenes.raytracer import Frame
from .disocclusion import PixelClassification, classify_pixels, overlap_fraction
from .reference import ExtrapolatedReferencePolicy, OnTrajectoryReferencePolicy
from .warp import WarpResult, warp_frame

__all__ = ["RayRequest", "TargetFrameRecord", "SparwSequenceResult",
           "SparwRenderer"]


@dataclass
class RayRequest:
    """A NeRF ray workload emitted by :meth:`SparwRenderer.step`.

    The driver must answer each request by ``send()``-ing back the
    :class:`~repro.nerf.renderer.RenderOutput` of rendering exactly these
    rays — either via ``renderer.render_rays`` (single-user path) or a
    batched evaluation spanning many sessions
    (:meth:`~repro.nerf.renderer.NeRFRenderer.render_ray_batch`).
    """

    kind: str  # "reference" (full frame) or "sparse" (disocclusion fill)
    frame_index: int
    origins: np.ndarray  # (N, 3)
    directions: np.ndarray  # (N, 3)
    # Camera pose the rays were generated from.  Reference requests always
    # carry it: full-frame rays are a pure function of (pose, intrinsics),
    # which is what lets the engine answer repeated references from the
    # shared cross-session cache.
    pose: np.ndarray | None = None

    @property
    def num_rays(self) -> int:
        return self.origins.shape[0]


@dataclass
class TargetFrameRecord:
    """Everything produced while rendering one target frame."""

    frame_index: int
    frame: Frame
    classification: PixelClassification
    overlap: float
    new_reference: bool
    sparse_stats: RenderStats
    reference_stats: RenderStats | None  # stats of the full render, if any
    warp_points: int  # points pushed through steps 1-3
    mean_warp_angle_deg: float


@dataclass
class SparwSequenceResult:
    """Result of rendering a pose sequence with SPARW."""

    records: list = field(default_factory=list)

    @property
    def frames(self) -> list:
        return [r.frame for r in self.records]

    @property
    def num_frames(self) -> int:
        return len(self.records)

    @property
    def num_references(self) -> int:
        return sum(1 for r in self.records if r.new_reference)

    def mean_warped_fraction(self) -> float:
        return float(np.mean([r.classification.warped_fraction
                              for r in self.records]))

    def mean_disoccluded_fraction(self) -> float:
        return float(np.mean([r.classification.disoccluded_fraction
                              for r in self.records]))

    def total_sparse_stats(self) -> RenderStats:
        total = RenderStats()
        for r in self.records:
            total = total.merge(r.sparse_stats)
        return total

    def total_reference_stats(self) -> RenderStats:
        total = RenderStats()
        for r in self.records:
            if r.reference_stats is not None:
                total = total.merge(r.reference_stats)
        return total


class SparwRenderer:
    """Renders pose sequences with sparse radiance warping.

    Parameters
    ----------
    renderer:
        The full-frame/sparse NeRF renderer (any field).
    camera:
        Camera template; its intrinsics are used for every frame.
    window:
        Number of target frames sharing one reference (the paper's N).
    policy:
        ``"extrapolated"`` (paper, off-trajectory, overlappable) or
        ``"on_trajectory"`` (TEMP baseline: chained warping from the
        previous output frame, resetting every window).
    angle_threshold_deg:
        Optional warping threshold phi (Sec. III-C); pixels warped across a
        wider angle are re-rendered by the NeRF model.
    """

    def __init__(self, renderer: NeRFRenderer, camera: PinholeCamera,
                 window: int = 16, policy: str = "extrapolated",
                 angle_threshold_deg: float | None = None):
        self.renderer = renderer
        self.camera = camera
        self.window = int(window)
        self.angle_threshold_deg = angle_threshold_deg
        if policy == "extrapolated":
            self.policy = ExtrapolatedReferencePolicy(window)
        elif policy == "on_trajectory":
            self.policy = OnTrajectoryReferencePolicy(window)
        else:
            raise ValueError(f"unknown reference policy {policy!r}")
        self._chained = policy == "on_trajectory"
        self._retune: tuple | None = None

    def retune(self, renderer: NeRFRenderer | None = None,
               camera: PinholeCamera | None = None,
               on_apply=None) -> None:
        """Stage a mid-stream quality switch (the governor's tier move).

        Takes effect at the start of the next frame :meth:`step` begins:
        the pipeline swaps in the new renderer/camera and *forces a fresh
        reference*, so warped targets never mix resolutions with their
        reference.  ``on_apply`` (optional) is called at that moment — a
        frame may still be in flight at the old settings when the switch
        is staged, so level/cache bookkeeping must wait for the swap to
        land.  ``None`` keeps the current renderer or camera.  A pipeline
        that is never retuned behaves bit-identically to one without this
        method.
        """
        self._retune = (renderer or self.renderer, camera or self.camera,
                        on_apply)

    # -- reference path ----------------------------------------------------------

    def render_reference(self, pose: np.ndarray) -> tuple[Frame, RenderStats]:
        """Full-frame NeRF render at ``pose`` (the green path in Fig. 10)."""
        return self._drive(self._reference_path(pose, frame_index=0))

    def _reference_path(self, pose: np.ndarray, frame_index: int):
        """Generator: yield the full-frame request, return (frame, stats)."""
        camera = self.camera.with_pose(pose)
        origins, directions = camera.generate_rays()
        flat_d = directions.reshape(-1, 3)
        out = yield RayRequest(kind="reference", frame_index=frame_index,
                               origins=origins.reshape(-1, 3),
                               directions=flat_d, pose=camera.c2w.copy())
        return self.renderer.compose_frame(camera, flat_d, out), out.stats

    def _drive(self, gen):
        """Run a path generator to completion with direct render calls."""
        send_value = None
        while True:
            try:
                event = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            send_value = self.renderer.render_rays(event.origins,
                                                   event.directions)

    # -- target path ------------------------------------------------------------

    def render_target(self, reference: Frame, pose: np.ndarray
                      ) -> tuple[Frame, WarpResult, PixelClassification,
                                 RenderStats]:
        """Warp ``reference`` to ``pose`` and fill disocclusions sparsely."""
        return self._drive(self._target_path(reference, pose, frame_index=0))

    def _target_path(self, reference: Frame, pose: np.ndarray,
                     frame_index: int):
        """Generator for the lightweight path: warp, classify, sparse-fill.

        Yields at most one sparse :class:`RayRequest`; returns
        ``(frame, warp, classification, sparse_stats)``.  Shared by
        :meth:`render_target` (direct rendering) and :meth:`step` (batched
        engine driving), so the two paths cannot drift apart.
        """
        ref_camera = self.camera.with_pose(reference.c2w)
        target_camera = self.camera.with_pose(pose)
        with section("sparw.warp"):
            warp = warp_frame(reference, ref_camera, target_camera)
        with section("sparw.classify"):
            classification = classify_pixels(warp, self.angle_threshold_deg)

        pixel_ids = classification.rerender_pixel_ids()
        if pixel_ids.size:
            v, u = np.divmod(pixel_ids, target_camera.width)
            origins, directions = target_camera.rays_for_pixels(u + 0.5,
                                                                v + 0.5)
            out = yield RayRequest(kind="sparse", frame_index=frame_index,
                                   origins=origins, directions=directions)
            colors, z = self.renderer.compose_pixels(target_camera,
                                                     directions, out)
            sparse_stats = out.stats
        else:
            colors = np.zeros((0, 3))
            z = np.zeros(0)
            sparse_stats = RenderStats()

        with section("sparw.assemble"):
            frame = self._assemble_target(warp, classification, target_camera,
                                          pixel_ids, colors, z)
        return frame, warp, classification, sparse_stats

    def _assemble_target(self, warp: WarpResult,
                         classification: PixelClassification,
                         target_camera: PinholeCamera, pixel_ids: np.ndarray,
                         colors: np.ndarray, z: np.ndarray) -> Frame:
        """Merge warped pixels, sparse fills, and background into a Frame."""
        image = warp.image.copy()
        depth = warp.depth.copy()
        hit = classification.warped.copy()

        if pixel_ids.size:
            flat_img = image.reshape(-1, 3)
            flat_img[pixel_ids] = colors
            flat_depth = depth.reshape(-1)
            flat_depth[pixel_ids] = z
            hit.reshape(-1)[pixel_ids] = np.isfinite(z)

        if self.renderer.background is not None:
            void = classification.void & ~classification.disoccluded
            if void.any():
                _, dirs = target_camera.generate_rays()
                bg = self.renderer.background(dirs.reshape(-1, 3))
                image.reshape(-1, 3)[void.reshape(-1)] = bg[void.reshape(-1)]

        return Frame(image=image, depth=depth, hit=hit,
                     c2w=target_camera.c2w.copy())

    # -- sequence rendering --------------------------------------------------------

    def step(self, poses: list):
        """Resumable per-frame generator over a pose sequence.

        Yields two kinds of events:

        * :class:`RayRequest` — the pipeline needs NeRF ray results to
          continue; the driver must respond with
          ``gen.send(render_output)`` where ``render_output`` renders
          exactly the requested rays.
        * :class:`TargetFrameRecord` — a finished target frame; respond
          with ``gen.send(None)`` (or plain ``next()``).

        Both the single-user :meth:`render_sequence` and the multi-session
        batching engine (:mod:`repro.engine`) drive this generator; the
        engine interleaves many of them and answers their requests from
        shared vectorized field queries.
        """
        poses = [np.asarray(p, dtype=float) for p in poses]
        reference: Frame | None = None
        previous_output: Frame | None = None

        for i, pose in enumerate(poses):
            if self._retune is not None:
                # Apply the staged quality switch at a frame boundary:
                # dropping the reference (and chained output) forces a
                # fresh full render at the new resolution below.
                self.renderer, self.camera, on_apply = self._retune
                self._retune = None
                reference = None
                previous_output = None
                if on_apply is not None:
                    on_apply()
            ref_stats = None
            new_ref = self.policy.needs_new_reference(i)
            if new_ref or reference is None:
                if self._chained and previous_output is not None:
                    # TEMP baseline: reuse the last *output* frame; no fresh
                    # full render (errors accumulate across windows too).
                    reference = previous_output
                else:
                    ref_pose = self.policy.reference_pose(i, poses)
                    reference, ref_stats = yield from self._reference_path(
                        ref_pose, frame_index=i)

            frame, warp, classification, sparse_stats = yield from (
                self._target_path(reference, pose, frame_index=i))
            if self._chained:
                # Chained warping: the next frame warps from this output.
                reference = frame
            previous_output = frame

            covered = classification.warped
            mean_angle = (float(warp.warp_angle_deg[covered].mean())
                          if covered.any() else 0.0)
            yield TargetFrameRecord(
                frame_index=i,
                frame=frame,
                classification=classification,
                overlap=overlap_fraction(warp),
                new_reference=ref_stats is not None,
                sparse_stats=sparse_stats,
                reference_stats=ref_stats,
                warp_points=reference.depth.size,
                mean_warp_angle_deg=mean_angle,
            )

    def render_sequence(self, poses: list) -> SparwSequenceResult:
        """Render every pose in order, managing references per the policy.

        Drives :meth:`step`, answering each ray request with a direct
        ``render_rays`` call — the single-user path.
        """
        result = SparwSequenceResult()
        gen = self.step(poses)
        send_value = None
        while True:
            try:
                event = gen.send(send_value)
            except StopIteration:
                return result
            if isinstance(event, RayRequest):
                send_value = self.renderer.render_rays(event.origins,
                                                       event.directions)
            else:
                result.records.append(event)
                send_value = None
