"""Disocclusion classification and warp statistics (Sec. III-B step 4 setup).

After naive warping, every target pixel falls into one of three classes:

* **warped** — covered by a surface point from the reference frame; its color
  is reused directly.
* **void** — the reference frame saw background in that direction (infinite
  depth); the paper's depth test skips these in sparse NeRF rendering.
* **disoccluded** — a hole: geometry newly visible in the target view.  Only
  these pixels go through the (sparse) NeRF model.

The same masks yield the overlap statistics of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...backend.dispatch import override
from .warp import WarpResult

__all__ = ["PixelClassification", "classify_pixels", "classify_masks",
           "classify_masks_numpy", "overlap_fraction"]


@dataclass
class PixelClassification:
    """Pixel partition of a warped target frame."""

    warped: np.ndarray  # (H, W) bool — reuse the warped color
    disoccluded: np.ndarray  # (H, W) bool — sparse NeRF re-render
    void: np.ndarray  # (H, W) bool — background, skipped

    @property
    def num_pixels(self) -> int:
        return self.warped.size

    @property
    def warped_fraction(self) -> float:
        return float(self.warped.mean())

    @property
    def disoccluded_fraction(self) -> float:
        return float(self.disoccluded.mean())

    @property
    def void_fraction(self) -> float:
        return float(self.void.mean())

    def rerender_pixel_ids(self) -> np.ndarray:
        """Flat row-major pixel ids to hand to the sparse NeRF renderer."""
        return np.nonzero(self.disoccluded.reshape(-1))[0]


def classify_pixels(warp: WarpResult,
                    angle_threshold_deg: float | None = None
                    ) -> PixelClassification:
    """Partition pixels of a naive warp, optionally applying the phi test.

    With ``angle_threshold_deg`` set (Sec. III-C / Fig. 26), covered pixels
    whose warp angle exceeds the threshold are demoted to disoccluded — the
    radiance approximation is not trusted there, so the NeRF model re-renders
    them.
    """
    warped, disoccluded = classify_masks(warp.covered, warp.hole_mask,
                                         warp.warp_angle_deg,
                                         angle_threshold_deg)
    return PixelClassification(warped=warped, disoccluded=disoccluded,
                               void=warp.void.copy())


def classify_masks(covered: np.ndarray, hole: np.ndarray,
                   angle: np.ndarray, threshold: float | None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Backend-dispatched :func:`classify_masks_numpy` (see there)."""
    fn = override("disocclusion.classify")
    if fn is not None:
        return fn(covered, hole, angle, threshold)
    return classify_masks_numpy(covered, hole, angle, threshold)


def classify_masks_numpy(covered: np.ndarray, hole: np.ndarray,
                         angle: np.ndarray, threshold: float | None
                         ) -> tuple[np.ndarray, np.ndarray]:
    """The (warped, disoccluded) mask partition of a naive warp.

    ``threshold=None`` skips the phi test: the masks are plain copies of
    coverage and hole state.  Otherwise covered pixels whose warp angle
    exceeds the threshold move from warped to disoccluded.  Always
    returns fresh arrays (callers mutate them downstream).
    """
    warped = covered.copy()
    disoccluded = hole.copy()
    if threshold is not None:
        too_wide = warped & (angle > threshold)
        warped &= ~too_wide
        disoccluded |= too_wide
    return warped, disoccluded


def overlap_fraction(warp: WarpResult) -> float:
    """Fraction of target pixels whose scene content the reference captured.

    This matches the paper's overlap metric (Fig. 7): surface pixels covered
    by a warped point *and* background pixels the reference also saw as
    background both count as overlapped; the complement is exactly the
    disoccluded fraction that requires re-rendering.
    """
    return float(1.0 - warp.hole_mask.mean())
