"""SPARW: sparse radiance warping (the paper's Sec. III)."""

from .blending import SeamBlendResult, blend_seams, seam_band
from .disocclusion import PixelClassification, classify_pixels, overlap_fraction
from .pipeline import (
    RayRequest,
    SparwRenderer,
    SparwSequenceResult,
    TargetFrameRecord,
)
from .reference import ExtrapolatedReferencePolicy, OnTrajectoryReferencePolicy
from .warp import VOID_FAR_DEPTH, WarpResult, warp_frame

__all__ = [
    "SeamBlendResult",
    "blend_seams",
    "seam_band",
    "PixelClassification",
    "classify_pixels",
    "overlap_fraction",
    "RayRequest",
    "SparwRenderer",
    "SparwSequenceResult",
    "TargetFrameRecord",
    "ExtrapolatedReferencePolicy",
    "OnTrajectoryReferencePolicy",
    "VOID_FAR_DEPTH",
    "WarpResult",
    "warp_frame",
]
