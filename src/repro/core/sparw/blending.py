"""Boundary blending between warped and NeRF-rendered regions (Sec. VIII).

The paper notes that SPARW "exposes potential aliasing issues across the
boundary between warped pixels and NeRF-rendered pixels" and suggests
blending across the regions with techniques from foveated rendering.  This
module implements that extension: a feathered cross-fade in a band around
the warped/re-rendered seam.

Within ``band`` pixels of a seam, the output is a distance-weighted mix of
the warped color and the sparse-NeRF color; re-rendering the band on the
NeRF side costs a few extra sparse pixels (reported so the hardware model
can charge for them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeamBlendResult", "seam_band", "blend_seams"]


@dataclass
class SeamBlendResult:
    """A blended frame plus the pixels the blend re-rendered."""

    image: np.ndarray  # (H, W, 3)
    band: np.ndarray  # (H, W) bool — pixels inside the blend band
    extra_rendered: int  # warped pixels that also needed a NeRF color


def _dilate(mask: np.ndarray, iterations: int) -> np.ndarray:
    """4-neighbourhood binary dilation (no scipy dependency)."""
    out = mask.copy()
    for _ in range(iterations):
        grown = out.copy()
        grown[1:, :] |= out[:-1, :]
        grown[:-1, :] |= out[1:, :]
        grown[:, 1:] |= out[:, :-1]
        grown[:, :-1] |= out[:, 1:]
        out = grown
    return out


def seam_band(warped: np.ndarray, rendered: np.ndarray, band: int = 2
              ) -> np.ndarray:
    """Pixels within ``band`` of the warped/rendered seam.

    ``warped``/``rendered`` are the disjoint boolean masks of the two pixel
    classes; the band contains pixels of either class that lie within
    ``band`` dilations of the other class.
    """
    if band < 1:
        return np.zeros_like(warped)
    near_rendered = _dilate(rendered, band) & warped
    near_warped = _dilate(warped, band) & rendered
    return near_rendered | near_warped


def blend_seams(
    warped_image: np.ndarray,
    nerf_image: np.ndarray,
    warped_mask: np.ndarray,
    rendered_mask: np.ndarray,
    band: int = 2,
) -> SeamBlendResult:
    """Feathered cross-fade across warped/re-rendered seams.

    ``warped_image`` holds warped colors (valid on ``warped_mask``);
    ``nerf_image`` holds NeRF colors (valid on ``rendered_mask`` and, for
    band pixels on the warped side, wherever the caller re-rendered them).
    The blend weight ramps linearly with distance from the seam: pixels at
    the seam mix 50/50; pixels ``band`` away keep their own class's color.
    """
    warped_mask = np.asarray(warped_mask, dtype=bool)
    rendered_mask = np.asarray(rendered_mask, dtype=bool)
    if (warped_mask & rendered_mask).any():
        raise ValueError("warped and rendered masks must be disjoint")

    height, width = warped_mask.shape
    image = np.where(warped_mask[..., None], warped_image, nerf_image)
    band_mask = seam_band(warped_mask, rendered_mask, band)
    if not band_mask.any():
        return SeamBlendResult(image=image, band=band_mask, extra_rendered=0)

    # Distance-from-other-class in dilation steps, computed incrementally.
    distance = np.full((height, width), band + 1, dtype=float)
    grown_r = rendered_mask.copy()
    grown_w = warped_mask.copy()
    for step in range(1, band + 1):
        grown_r = _dilate(grown_r, 1)
        grown_w = _dilate(grown_w, 1)
        newly_r = warped_mask & grown_r & (distance > band)
        newly_w = rendered_mask & grown_w & (distance > band)
        distance[newly_r | newly_w] = step

    in_band = band_mask
    # Weight of the pixel's own class: 0.5 at the seam -> 1.0 at the edge.
    own_weight = 0.5 + 0.5 * (distance - 1.0) / band
    own_weight = np.clip(own_weight, 0.5, 1.0)

    blended = image.copy()
    on_warped = in_band & warped_mask
    on_rendered = in_band & rendered_mask
    w = own_weight[..., None]
    blended[on_warped] = (w[on_warped] * warped_image[on_warped]
                          + (1 - w[on_warped]) * nerf_image[on_warped])
    blended[on_rendered] = (w[on_rendered] * nerf_image[on_rendered]
                            + (1 - w[on_rendered]) * warped_image[on_rendered])
    return SeamBlendResult(image=blended, band=band_mask,
                           extra_rendered=int(on_warped.sum()))
