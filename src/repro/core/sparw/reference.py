"""Reference-frame policy: when and where to render full NeRF frames.

The key design decision of SPARW (Sec. III-C, Fig. 10/11): reference frames
need not lie on the camera trajectory.  Extrapolating the reference pose
ahead of the camera (constant-velocity, Eq. 5-6) lets reference rendering
overlap target rendering; centring it ``N/2`` frames ahead maximises overlap
with the ``N`` targets that will reuse it.

Two policies are provided:

* ``ExtrapolatedReferencePolicy`` — the paper's scheme.
* ``OnTrajectoryReferencePolicy`` — the prior-work baseline (TEMP-N): the
  reference is simply the most recent rendered frame, which serialises the
  two rendering paths (Fig. 11a).
"""

from __future__ import annotations

import numpy as np

from ...geometry.transforms import extrapolate_pose

__all__ = ["ExtrapolatedReferencePolicy", "OnTrajectoryReferencePolicy"]


class ExtrapolatedReferencePolicy:
    """Velocity-extrapolated, off-trajectory reference poses (Eq. 5-6)."""

    name = "extrapolated"
    overlaps_rendering = True

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)

    def needs_new_reference(self, frame_index: int) -> bool:
        """A new reference starts every ``window`` target frames."""
        return frame_index % self.window == 0

    def reference_pose(self, frame_index: int, trajectory_poses: list
                       ) -> np.ndarray:
        """Pose for the reference serving frames [frame_index, +window).

        Uses only *past* camera poses (the two most recent), as the paper
        does: future poses are unknown at schedule time.  The extrapolation
        target is the centre of the upcoming window.
        """
        if frame_index == 0 or len(trajectory_poses) < 2 or frame_index < 2:
            # Bootstrap: no velocity estimate yet; render at the current pose.
            return np.asarray(trajectory_poses[min(frame_index,
                                                   len(trajectory_poses) - 1)])
        prev = np.asarray(trajectory_poses[frame_index - 2])
        curr = np.asarray(trajectory_poses[frame_index - 1])
        # The window starts 1 frame after `curr`; its centre is N/2 further.
        steps = 1.0 + self.window / 2.0
        return extrapolate_pose(prev, curr, steps)


class OnTrajectoryReferencePolicy:
    """Reference = an actual past frame (prior-work temporal warping)."""

    name = "on_trajectory"
    overlaps_rendering = False

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)

    def needs_new_reference(self, frame_index: int) -> bool:
        return frame_index % self.window == 0

    def reference_pose(self, frame_index: int, trajectory_poses: list
                       ) -> np.ndarray:
        """The reference sits exactly on the trajectory at the current frame."""
        return np.asarray(trajectory_poses[min(frame_index,
                                               len(trajectory_poses) - 1)])
