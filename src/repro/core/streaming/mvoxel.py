"""MVoxel partitioning: grouping voxels into buffer-sized macro blocks.

Sec. IV-A of the paper groups the voxel grid into *MVoxels* whose vertex
features are stored contiguously in DRAM, sized so one MVoxel fits the
on-chip buffer.  Streaming MVoxels sequentially makes all feature traffic
sequential, and each feature byte is read (at most) once.

Deviation noted in DESIGN.md: a sample's eight vertices can straddle MVoxel
boundaries, so our DRAM layout stores each MVoxel *with its one-vertex halo*
(about ``((s+1)/s)^3`` storage overhead for side ``s``).  Each stored byte is
still read at most once and reads stay fully sequential; the paper's
no-duplication claim glosses the same boundary issue.

The partitioner is dimension-generic so the 2-D factor planes of TensoRF
("MTiles") reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MVoxelLayout"]


@dataclass
class MVoxelLayout:
    """Partition of an N-D cell grid into macro blocks.

    Parameters
    ----------
    grid_shape:
        Cells per axis of the underlying grid.
    entry_bytes:
        Bytes per vertex feature entry.
    buffer_bytes:
        On-chip buffer capacity one MVoxel (vertices incl. halo) must fit.
    side:
        Macro-block side in cells; chosen automatically (largest power of
        two that fits the buffer) when omitted.
    """

    grid_shape: tuple
    entry_bytes: int
    buffer_bytes: int
    side: int | None = None

    def __post_init__(self):
        self.grid_shape = tuple(int(s) for s in self.grid_shape)
        self.ndim = len(self.grid_shape)
        if self.side is None:
            self.side = self._auto_side()
        if self.mvoxel_bytes > self.buffer_bytes:
            raise ValueError(
                f"MVoxel of side {self.side} ({self.mvoxel_bytes} B) exceeds "
                f"buffer ({self.buffer_bytes} B)")
        self.blocks_per_axis = tuple(
            -(-s // self.side) for s in self.grid_shape)  # ceil division

    def _auto_side(self) -> int:
        side = 1
        while True:
            nxt = side * 2
            vertices = (nxt + 1) ** self.ndim
            if vertices * self.entry_bytes > self.buffer_bytes:
                return side
            if nxt >= max(self.grid_shape):
                return min(nxt, max(self.grid_shape))
            side = nxt

    # -- geometry ----------------------------------------------------------------

    @property
    def vertices_per_mvoxel(self) -> int:
        """Vertex entries stored per MVoxel (its cells' corners, with halo)."""
        return (self.side + 1) ** self.ndim

    @property
    def mvoxel_bytes(self) -> int:
        return self.vertices_per_mvoxel * self.entry_bytes

    @property
    def num_mvoxels(self) -> int:
        out = 1
        for b in self.blocks_per_axis:
            out *= b
        return out

    @property
    def storage_overhead(self) -> float:
        """Halo-duplication factor versus the raw vertex grid."""
        raw_vertices = 1
        for s in self.grid_shape:
            raw_vertices *= s + 1
        return (self.num_mvoxels * self.vertices_per_mvoxel) / raw_vertices

    # -- mapping ------------------------------------------------------------------

    def mvoxel_of_cells(self, cell_ids: np.ndarray) -> np.ndarray:
        """Map flat cell ids to flat MVoxel ids (-1 passes through)."""
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        valid = cell_ids >= 0
        out = np.full(cell_ids.shape, -1, dtype=np.int64)
        if not valid.any():
            return out
        ids = cell_ids[valid]
        coords = []
        rem = ids
        for extent in reversed(self.grid_shape):
            coords.append(rem % extent)
            rem = rem // extent
        coords = coords[::-1]  # now axis-ordered
        block = np.zeros_like(ids)
        for axis in range(self.ndim):
            block = block * self.blocks_per_axis[axis] + coords[axis] // self.side
        out[valid] = block
        return out

    def mvoxel_base_address(self, mvoxel_ids: np.ndarray) -> np.ndarray:
        """DRAM byte offset of each MVoxel in the streaming layout."""
        return np.asarray(mvoxel_ids, dtype=np.int64) * self.mvoxel_bytes
