"""Fully-streaming NeRF rendering (the paper's Sec. IV-A)."""

from .hierarchical import (
    reverted_traffic_fraction,
    split_by_reversion,
    streaming_execution_order,
)
from .mvoxel import MVoxelLayout
from .rit import RIT_ENTRY_BYTES, RayIndexTable
from .scheduler import FullyStreamingScheduler, GroupStreamingReport, StreamingReport

__all__ = [
    "reverted_traffic_fraction",
    "split_by_reversion",
    "streaming_execution_order",
    "MVoxelLayout",
    "RIT_ENTRY_BYTES",
    "RayIndexTable",
    "FullyStreamingScheduler",
    "GroupStreamingReport",
    "StreamingReport",
]
