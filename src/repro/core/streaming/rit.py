"""Ray Index Table (RIT): the sample-to-MVoxel schedule of Sec. IV-A.

The RIT records, for every MVoxel, the ids of the ray samples whose feature
vectors live there.  During memory-centric rendering the table is walked in
MVoxel order: each MVoxel is streamed on-chip once and all of its pending
samples are gathered before it is discarded.

Per the paper's hardware sizing, one RIT entry carries a ray-sample's eight
vertex indices and interpolation weights (48 bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RayIndexTable", "RIT_ENTRY_BYTES"]

# 8 x (4-byte vertex index + 2-byte weight), per Sec. V.
RIT_ENTRY_BYTES = 48


@dataclass
class RayIndexTable:
    """Samples grouped by the MVoxel that serves them.

    ``order`` is a permutation of sample indices sorted by MVoxel;
    ``mvoxel_ids``/``offsets`` delimit each MVoxel's slice of ``order``.
    Samples with no MVoxel (outside the grid) are excluded.
    """

    order: np.ndarray  # (S,) sample indices grouped by mvoxel
    mvoxel_ids: np.ndarray  # (K,) occupied mvoxel ids, ascending
    offsets: np.ndarray  # (K+1,) slice boundaries into `order`

    @classmethod
    def build(cls, sample_mvoxels: np.ndarray) -> "RayIndexTable":
        """Group sample indices by their MVoxel id (-1 = outside, dropped)."""
        sample_mvoxels = np.asarray(sample_mvoxels, dtype=np.int64)
        valid = np.nonzero(sample_mvoxels >= 0)[0]
        keys = sample_mvoxels[valid]
        sort = np.argsort(keys, kind="stable")
        order = valid[sort]
        sorted_keys = keys[sort]
        if sorted_keys.size == 0:
            return cls(order=order, mvoxel_ids=np.zeros(0, dtype=np.int64),
                       offsets=np.zeros(1, dtype=np.int64))
        boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
        offsets = np.concatenate([[0], boundaries, [sorted_keys.size]])
        mvoxel_ids = sorted_keys[offsets[:-1]]
        return cls(order=order, mvoxel_ids=mvoxel_ids,
                   offsets=offsets.astype(np.int64))

    # -- iteration -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.mvoxel_ids)

    def samples_for(self, k: int) -> np.ndarray:
        """Sample indices scheduled under the k-th occupied MVoxel."""
        return self.order[self.offsets[k]:self.offsets[k + 1]]

    def iter_entries(self):
        """Yield (mvoxel_id, sample_indices) in streaming order."""
        for k, mid in enumerate(self.mvoxel_ids):
            yield int(mid), self.samples_for(k)

    # -- sizes ----------------------------------------------------------------

    @property
    def num_scheduled_samples(self) -> int:
        return int(self.order.shape[0])

    @property
    def table_bytes(self) -> int:
        """DRAM footprint of the RIT itself (one entry per sample)."""
        return self.num_scheduled_samples * RIT_ENTRY_BYTES

    def streaming_sample_order(self) -> np.ndarray:
        """The full memory-centric sample permutation."""
        return self.order.copy()
