"""Fully-streaming (memory-centric) gather scheduling — Sec. IV-A.

Converts the pixel-centric gather of a batch of ray samples into the paper's
memory-centric order: partition each gather structure into MVoxels, build the
Ray Index Table, and account the DRAM traffic of streaming occupied MVoxels
exactly once.  Hash-table levels whose accesses cannot be spatially tiled
revert to the baseline pixel-centric traffic (the paper's reversion rule for
Instant-NGP's coarse hashed levels).

For every gather group the scheduler reports both the baseline traffic
(pixel-centric, optionally filtered through an on-chip cache) and the
fully-streaming traffic, which the benches turn into Fig. 4/17/19/21 rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ...memsys.cache import simulate_lru
from ...memsys.trace import analyze_streaming, trace_from_gather_group
from .mvoxel import MVoxelLayout
from .rit import RayIndexTable

__all__ = ["GroupStreamingReport", "StreamingReport", "FullyStreamingScheduler"]


@dataclass
class GroupStreamingReport:
    """Traffic comparison for one gather group (one grid/level/plane)."""

    name: str
    streamable: bool
    num_samples: int
    vertex_accesses: int

    # Pixel-centric baseline.
    baseline_bytes: int  # DRAM bytes after the on-chip cache (if simulated)
    baseline_streaming_bytes: int
    baseline_random_bytes: int
    baseline_streaming_fraction: float  # access-level (Fig. 4 metric)
    unique_bytes: int

    # Fully-streaming dataflow.
    fs_streaming_bytes: int
    fs_random_bytes: int
    rit_bytes: int

    # MVoxel details (zero for reverted groups).
    mvoxel_side: int = 0
    occupied_mvoxels: int = 0
    total_mvoxels: int = 0
    storage_overhead: float = 1.0

    @property
    def fs_bytes(self) -> int:
        return self.fs_streaming_bytes + self.fs_random_bytes

    @property
    def traffic_reduction(self) -> float:
        """Baseline / fully-streaming DRAM bytes."""
        return self.baseline_bytes / max(self.fs_bytes, 1)


@dataclass
class StreamingReport:
    """Aggregate over all gather groups of a render batch."""

    groups: list = field(default_factory=list)

    def _total(self, attr: str) -> int:
        return int(sum(getattr(g, attr) for g in self.groups))

    @property
    def baseline_bytes(self) -> int:
        return self._total("baseline_bytes")

    @property
    def baseline_streaming_bytes(self) -> int:
        return self._total("baseline_streaming_bytes")

    @property
    def baseline_random_bytes(self) -> int:
        return self._total("baseline_random_bytes")

    @property
    def fs_streaming_bytes(self) -> int:
        return self._total("fs_streaming_bytes")

    @property
    def fs_random_bytes(self) -> int:
        return self._total("fs_random_bytes")

    @property
    def fs_bytes(self) -> int:
        return self.fs_streaming_bytes + self.fs_random_bytes

    @property
    def baseline_nonstreaming_fraction(self) -> float:
        """Access-weighted non-streaming fraction of the baseline (Fig. 4)."""
        accesses = sum(g.vertex_accesses for g in self.groups)
        if accesses == 0:
            return 0.0
        weighted = sum(g.baseline_streaming_fraction * g.vertex_accesses
                       for g in self.groups)
        return 1.0 - weighted / accesses

    @property
    def fs_streaming_fraction(self) -> float:
        total = self.fs_bytes
        return 1.0 if total == 0 else self.fs_streaming_bytes / total

    @property
    def traffic_reduction(self) -> float:
        return self.baseline_bytes / max(self.fs_bytes, 1)


class FullyStreamingScheduler:
    """Builds MVoxel layouts + RITs and accounts both dataflows' traffic.

    Parameters
    ----------
    buffer_bytes:
        On-chip vertex buffer an MVoxel must fit into (paper: 32 KB VFT).
    baseline_cache_bytes:
        Capacity of the cache the *baseline* enjoys; pixel-centric traffic
        is its miss traffic.  ``None`` charges every baseline access to
        DRAM (no reuse at all).
    cache_block_bytes:
        Cache line size for the baseline cache simulation.
    """

    def __init__(self, buffer_bytes: int = 32 * 1024,
                 baseline_cache_bytes: int | None = 2 * 1024 * 1024,
                 cache_block_bytes: int = 64):
        self.buffer_bytes = int(buffer_bytes)
        self.baseline_cache_bytes = baseline_cache_bytes
        self.cache_block_bytes = int(cache_block_bytes)

    # -- per-group ----------------------------------------------------------------

    def schedule_group(self, group) -> tuple[GroupStreamingReport,
                                             RayIndexTable | None,
                                             MVoxelLayout | None]:
        """Schedule one gather group; returns (report, rit, layout)."""
        raw = trace_from_gather_group(group)
        trace = raw.coalesced(block_bytes=self.cache_block_bytes)
        analysis = analyze_streaming(trace)
        unique = raw.unique_bytes(granularity=self.cache_block_bytes)

        if self.baseline_cache_bytes is not None:
            cache = simulate_lru(raw.addresses, self.baseline_cache_bytes,
                                 block_bytes=self.cache_block_bytes)
            baseline_bytes = cache.miss_bytes
        else:
            baseline_bytes = trace.total_bytes
        stream_frac = analysis.streaming_fraction
        baseline_streaming = int(baseline_bytes * stream_frac)
        baseline_random = baseline_bytes - baseline_streaming

        if not group.streamable:
            # Reversion rule: hashed levels keep the pixel-centric dataflow.
            report = GroupStreamingReport(
                name=group.name, streamable=False,
                num_samples=group.num_samples,
                vertex_accesses=group.num_samples * group.vertices_per_sample,
                baseline_bytes=baseline_bytes,
                baseline_streaming_bytes=baseline_streaming,
                baseline_random_bytes=baseline_random,
                baseline_streaming_fraction=stream_frac,
                unique_bytes=unique,
                fs_streaming_bytes=baseline_streaming,
                fs_random_bytes=baseline_random,
                rit_bytes=0,
            )
            return report, None, None

        layout = MVoxelLayout(grid_shape=group.grid_shape,
                              entry_bytes=group.entry_bytes,
                              buffer_bytes=self.buffer_bytes)
        sample_mvoxels = layout.mvoxel_of_cells(group.cell_ids)
        rit = RayIndexTable.build(sample_mvoxels)
        occupied = len(rit)
        mvoxel_stream = occupied * layout.mvoxel_bytes
        # The RIT moves GPU -> NPU over the SoC interconnect (DMA into the
        # on-chip RIT buffer, Sec. IV-C); it is charged as on-chip traffic by
        # the SoC model, not as DRAM bytes here.
        rit_bytes = rit.table_bytes

        report = GroupStreamingReport(
            name=group.name, streamable=True,
            num_samples=group.num_samples,
            vertex_accesses=group.num_samples * group.vertices_per_sample,
            baseline_bytes=baseline_bytes,
            baseline_streaming_bytes=baseline_streaming,
            baseline_random_bytes=baseline_random,
            baseline_streaming_fraction=stream_frac,
            unique_bytes=unique,
            fs_streaming_bytes=mvoxel_stream,
            fs_random_bytes=0,
            rit_bytes=rit_bytes,
            mvoxel_side=layout.side,
            occupied_mvoxels=occupied,
            total_mvoxels=layout.num_mvoxels,
            storage_overhead=layout.storage_overhead,
        )
        return report, rit, layout

    # -- batch ---------------------------------------------------------------------

    def analyze(self, groups: list) -> StreamingReport:
        """Schedule every gather group of a render batch."""
        report = StreamingReport()
        for group in groups:
            group_report, _, _ = self.schedule_group(group)
            report.groups.append(group_report)
        return report
