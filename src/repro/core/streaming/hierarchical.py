"""Hierarchical-encoding support: per-level streaming with reversion.

Sec. IV-A of the paper: hierarchical data structures (multi-resolution hash
grids, factorized tensors) are streamed level-by-level for a ray group.
Levels whose data cannot be spatially tiled — hashed levels, where vertices
of one spatial region scatter across the table — *revert* to the original
pixel-centric dataflow.  In Instant-NGP this happens from roughly the middle
of the pyramid onward, leaving about half of the traffic non-streaming.

The gather groups already carry a ``streamable`` flag set by each field; this
module provides the policy helpers and the execution-order utility used to
prove functional equivalence of the reordering.
"""

from __future__ import annotations

import numpy as np

from .mvoxel import MVoxelLayout
from .rit import RayIndexTable

__all__ = ["split_by_reversion", "streaming_execution_order",
           "reverted_traffic_fraction"]


def split_by_reversion(groups: list) -> tuple[list, list]:
    """Partition gather groups into (streamable, reverted) lists."""
    streamable = [g for g in groups if g.streamable]
    reverted = [g for g in groups if not g.streamable]
    return streamable, reverted


def reverted_traffic_fraction(groups: list) -> float:
    """Fraction of gather traffic that stays pixel-centric (by bytes)."""
    total = 0
    reverted = 0
    for g in groups:
        traffic = g.num_samples * g.vertices_per_sample * g.entry_bytes
        total += traffic
        if not g.streamable:
            reverted += traffic
    return 0.0 if total == 0 else reverted / total


def streaming_execution_order(group, buffer_bytes: int = 32 * 1024
                              ) -> np.ndarray:
    """Memory-centric sample permutation for one streamable group.

    Returns sample indices ordered by ascending MVoxel — the order in which
    the Gathering Unit would actually process them.  Samples outside the
    grid are appended at the end (they gather nothing).  Used by tests to
    verify that reordering never changes rendered results.
    """
    layout = MVoxelLayout(grid_shape=group.grid_shape,
                          entry_bytes=group.entry_bytes,
                          buffer_bytes=buffer_bytes)
    sample_mvoxels = layout.mvoxel_of_cells(group.cell_ids)
    rit = RayIndexTable.build(sample_mvoxels)
    scheduled = rit.streaming_sample_order()
    outside = np.nonzero(np.asarray(group.cell_ids) < 0)[0]
    return np.concatenate([scheduled, outside])
