"""Conflict-free interleaved access plans for the Gathering Unit.

Combines the channel-major layout with the RIT schedule: for each occupied
MVoxel, the GU reads the eight corner vectors of every pending ray sample,
``M`` samples per cycle (one per bank port), channels fanned across banks.
This module provides the closed-form cycle accounting used by the GU timing
model and a checker that the resulting plan is conflict-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sram_layout import ChannelMajorLayout

__all__ = ["GatherPlanCost", "plan_gather_cycles", "verify_conflict_free"]


@dataclass
class GatherPlanCost:
    """Cycle/traffic accounting of a GU gather pass."""

    gather_cycles: int  # cycles spent reading vertex features
    samples: int
    vertices_read: int
    sram_bytes: int

    def merge(self, other: "GatherPlanCost") -> "GatherPlanCost":
        return GatherPlanCost(
            gather_cycles=self.gather_cycles + other.gather_cycles,
            samples=self.samples + other.samples,
            vertices_read=self.vertices_read + other.vertices_read,
            sram_bytes=self.sram_bytes + other.sram_bytes,
        )


def plan_gather_cycles(num_samples: int, vertices_per_sample: int,
                       entry_bytes: int, layout: ChannelMajorLayout
                       ) -> GatherPlanCost:
    """Cycles for gathering ``num_samples`` with the channel-major GU.

    Each sample needs ``vertices_per_sample`` vector reads; ``M`` samples
    proceed per cycle (paper: 8 cycles per sample's voxel at M parallel
    samples).
    """
    cycles = layout.analytic_cycles(num_samples, vertices_per_sample)
    vertices = num_samples * vertices_per_sample
    return GatherPlanCost(gather_cycles=cycles, samples=num_samples,
                          vertices_read=vertices,
                          sram_bytes=vertices * entry_bytes)


def verify_conflict_free(vertex_ids: np.ndarray,
                         layout: ChannelMajorLayout) -> bool:
    """Simulate the plan on the banked-SRAM model; True iff zero conflicts."""
    stats = layout.simulate(np.asarray(vertex_ids))
    return stats.conflict_rate == 0.0
