"""On-chip data layouts: feature-major vs channel-major (Sec. IV-B).

Two ways to spread vertex feature vectors across SRAM banks:

* **Feature-major** (prior NeRF accelerators, Fig. 13a): all channels of one
  feature vector live in one bank (``bank = vertex_id % B``).  Concurrent
  rays fetching different vertices collide whenever two vertices map to the
  same bank — a run-time-dependent pattern that cannot be fixed offline.
* **Channel-major** (Cicero, Fig. 13b): channel ``c`` of every vector lives
  in bank ``c % B``; a vertex read touches all banks at one row.  Each issue
  cycle serves ``M`` (ports) whole vertices with zero conflicts by
  construction.

Both layouts emit issue groups consumable by
:class:`repro.memsys.sram.BankedSRAM`, so the conflict claim is *simulated*,
not assumed.
"""

from __future__ import annotations

import numpy as np

from ...memsys.sram import BankConflictStats, BankedSRAM

__all__ = ["FeatureMajorLayout", "ChannelMajorLayout"]


class FeatureMajorLayout:
    """``bank = vertex % B``; a vector is contiguous within its bank."""

    name = "feature_major"

    def __init__(self, num_banks: int = 16, ports_per_bank: int = 1):
        self.num_banks = int(num_banks)
        self.ports_per_bank = int(ports_per_bank)

    def issue_groups(self, vertex_ids: np.ndarray, concurrent_rays: int = 16
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Build (bank_ids, addresses) issue groups from per-sample vertices.

        ``vertex_ids`` is (N, V): V gathered vertices per ray sample.  Each
        cycle, ``concurrent_rays`` samples fetch their k-th vertex in
        lockstep (k = 0..V-1), which is the access pattern of Fig. 13a.
        Ragged tails are padded with inactive lanes (-1).
        """
        vertex_ids = np.atleast_2d(np.asarray(vertex_ids, dtype=np.int64))
        n, v = vertex_ids.shape
        padded_n = -(-n // concurrent_rays) * concurrent_rays
        padded = np.full((padded_n, v), -1, dtype=np.int64)
        padded[:n] = vertex_ids
        # (blocks, rays, V) -> groups = blocks * V, lanes = rays.
        blocks = padded.reshape(-1, concurrent_rays, v)
        lanes = np.moveaxis(blocks, 2, 1).reshape(-1, concurrent_rays)

        active = lanes >= 0
        banks = np.where(active, lanes % self.num_banks, -1)
        addresses = np.where(active, lanes // self.num_banks, 0)
        return banks, addresses

    def simulate(self, vertex_ids: np.ndarray, concurrent_rays: int = 16
                 ) -> BankConflictStats:
        """Conflict statistics for a batch of gathered samples."""
        banks, addresses = self.issue_groups(vertex_ids, concurrent_rays)
        sram = BankedSRAM(self.num_banks, self.ports_per_bank)
        return sram.simulate_groups_fast(banks, addresses)


class ChannelMajorLayout:
    """``bank = channel % B``; a vertex read spans all banks at one row."""

    name = "channel_major"

    def __init__(self, num_banks: int = 32, ports_per_bank: int = 2,
                 feature_dim: int = 16):
        if feature_dim > num_banks:
            # Oversized vectors wrap around banks (Sec. IV-B); each wrap is
            # a separate cycle, handled by the address-generation sequencer.
            self.wraps = -(-feature_dim // num_banks)
        else:
            self.wraps = 1
        self.num_banks = int(num_banks)
        self.ports_per_bank = int(ports_per_bank)
        self.feature_dim = int(feature_dim)

    def issue_groups(self, vertex_ids: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Issue groups for GU gathering: M whole-vertex reads per cycle.

        Each lane is one (channel, vertex) request.  Per cycle, ``M`` ray
        samples fetch the same corner index; the channels of each vertex
        fan out across banks at row ``vertex_id``.
        """
        vertex_ids = np.atleast_2d(np.asarray(vertex_ids, dtype=np.int64))
        n, v = vertex_ids.shape
        m = self.ports_per_bank
        padded_n = -(-n // m) * m
        padded = np.full((padded_n, v), -1, dtype=np.int64)
        padded[:n] = vertex_ids
        blocks = padded.reshape(-1, m, v)  # (cycles', M, V)
        per_corner = np.moveaxis(blocks, 2, 1).reshape(-1, m)  # (G, M)

        channels = np.arange(self.feature_dim)
        bank_of_channel = channels % self.num_banks
        lanes = self.feature_dim
        groups = per_corner.shape[0]
        banks = np.empty((groups, m * lanes), dtype=np.int64)
        addresses = np.empty_like(banks)
        for port in range(m):
            vid = per_corner[:, port]
            active = vid >= 0
            sl = slice(port * lanes, (port + 1) * lanes)
            banks[:, sl] = np.where(active[:, None], bank_of_channel[None, :], -1)
            # Row address: vertex id, offset by the wrap index for wide vectors.
            wrap = channels // self.num_banks
            addresses[:, sl] = (np.maximum(vid, 0)[:, None] * self.wraps
                                + wrap[None, :])
        return banks, addresses

    def simulate(self, vertex_ids: np.ndarray) -> BankConflictStats:
        """Conflict statistics — provably 0 when wraps == 1 (see tests)."""
        banks, addresses = self.issue_groups(vertex_ids)
        sram = BankedSRAM(self.num_banks, self.ports_per_bank)
        return sram.simulate_groups_fast(banks, addresses)

    def analytic_cycles(self, num_samples: int, vertices_per_sample: int = 8
                        ) -> int:
        """Closed-form GU gather cycles: V reads per sample, M samples/cycle."""
        per_corner_cycles = -(-num_samples // self.ports_per_bank)
        return per_corner_cycles * vertices_per_sample * self.wraps
