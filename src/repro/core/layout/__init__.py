"""Bank conflict-free SRAM interleaving (the paper's Sec. IV-B)."""

from .interleave import GatherPlanCost, plan_gather_cycles, verify_conflict_free
from .sram_layout import ChannelMajorLayout, FeatureMajorLayout

__all__ = [
    "GatherPlanCost",
    "plan_gather_cycles",
    "verify_conflict_free",
    "ChannelMajorLayout",
    "FeatureMajorLayout",
]
