#!/usr/bin/env python
"""Check that every relative link in README.md and docs/ resolves.

Scans markdown files for inline links/images, skips absolute URLs and
pure anchors, and verifies each relative target exists on disk (anchor
fragments are stripped before the check). Exit code 1 lists every
broken link. Run from the repository root — CI's docs job does::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline markdown links/images: [text](target) / ![alt](target).
# Reference-style definitions are rare here; inline covers our docs.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def markdown_files(root: Path) -> list:
    """README.md plus every markdown file under docs/."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").rglob("*.md")))
    return [f for f in files if f.exists()]


def check_file(path: Path, root: Path) -> list:
    """Broken relative links in one file as (target, reason) pairs."""
    broken = []
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                broken.append((target, f"{relative} does not exist"))
            elif root.resolve() not in resolved.parents \
                    and resolved != root.resolve():
                broken.append((target, "escapes the repository"))
    return broken


def main() -> int:
    """Check every markdown file; print failures and return the exit code."""
    root = Path(__file__).resolve().parent.parent
    failures = 0
    for path in markdown_files(root):
        for target, reason in check_file(path, root):
            print(f"{path.relative_to(root)}: broken link {target!r} "
                  f"({reason})", file=sys.stderr)
            failures += 1
    if failures:
        print(f"\n{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve across "
          f"{len(markdown_files(root))} markdown files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
